//! A minimal JSON value model for the scenario-spec wire format.
//!
//! The build image has no `serde_json` (the vendored `serde` is a marker
//! shim), so the spec/result plumbing serializes through this hand-rolled
//! layer instead — the same approach `decor-trace` takes for its canonical
//! JSONL, but bidirectional: [`Json::parse`] accepts arbitrary standard
//! JSON (escapes, nested containers, whitespace) and [`Json::render`]
//! produces a canonical single-line form whose numbers round-trip exactly
//! (`u64` kept integral, `f64` via Rust's shortest-roundtrip display).
//!
//! Parse errors carry the byte offset and a description — malformed input
//! is always an `Err`, never a panic.

use std::fmt::Write as _;

/// One JSON value.
///
/// Unsigned integers get their own variant so 64-bit seeds survive the
/// round trip (an `f64` mantissa only holds 53 bits).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer that fits `u64`, kept exact.
    UInt(u64),
    /// Any other finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved by [`Json::render`].
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("byte {pos}: trailing characters after value"));
        }
        Ok(value)
    }

    /// Canonical single-line rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    /// Appends [`Json::render`] to `out` — the buffer-reuse form for
    /// callers that emit many lines (checkpoint journals, `decor-serve`
    /// streaming output).
    pub fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Num(v) => {
                assert!(v.is_finite(), "JSON numbers must be finite, got {v}");
                let start = out.len();
                let _ = write!(out, "{v}");
                // Keep the variant stable across a render/parse cycle:
                // `1250.0` must not come back as `UInt(1250)`.
                if !out[start..].contains(['.', 'e', 'E', '-']) {
                    out.push_str(".0");
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(key, out);
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64`, accepting an integral `Num` below 2^53.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(n) => Some(*n),
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v < 9.0e15 => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as `f64` (either numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(n) => Some(*n as f64),
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Builds a `Json::Num`, asserting finiteness at construction so the
/// failure names the offending field instead of surfacing at render time.
pub fn num(v: f64, what: &str) -> Json {
    assert!(v.is_finite(), "{what} must be finite, got {v}");
    Json::Num(v)
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    let Some(&b) = bytes.get(*pos) else {
        return Err(format!("byte {}: unexpected end of input", *pos));
    };
    match b {
        b'{' => parse_object(bytes, pos),
        b'[' => parse_array(bytes, pos),
        b'"' => parse_string(bytes, pos).map(Json::Str),
        b't' | b'f' | b'n' => parse_keyword(bytes, pos),
        b'-' | b'0'..=b'9' => parse_number(bytes, pos),
        other => Err(format!(
            "byte {}: unexpected character {:?}",
            *pos, other as char
        )),
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("byte {}: expected {:?}", *pos, c as char))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(&b',') => *pos += 1,
            Some(&b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("byte {}: expected ',' or '}}' in object", *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(&b',') => *pos += 1,
            Some(&b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("byte {}: expected ',' or ']' in array", *pos)),
        }
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    for (word, value) in [
        ("true", Json::Bool(true)),
        ("false", Json::Bool(false)),
        ("null", Json::Null),
    ] {
        if bytes[*pos..].starts_with(word.as_bytes()) {
            *pos += word.len();
            return Ok(value);
        }
    }
    Err(format!("byte {}: unknown keyword", *pos))
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ASCII slice");
    let integral = !text.contains(['.', 'e', 'E']) && !text.starts_with('-');
    if integral {
        if let Ok(n) = text.parse::<u64>() {
            return Ok(Json::UInt(n));
        }
    }
    match text.parse::<f64>() {
        Ok(v) if v.is_finite() => Ok(Json::Num(v)),
        _ => Err(format!("byte {start}: bad number {text:?}")),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("byte {}: expected string", *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err(format!("byte {}: unterminated string", *pos));
        };
        *pos += 1;
        match b {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&esc) = bytes.get(*pos) else {
                    return Err(format!("byte {}: unterminated escape", *pos));
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let code = parse_hex4(bytes, pos)?;
                        // Combine surrogate pairs; lone surrogates error.
                        let c = if (0xD800..0xDC00).contains(&code) {
                            if bytes.get(*pos) == Some(&b'\\') && bytes.get(*pos + 1) == Some(&b'u')
                            {
                                *pos += 2;
                                let low = parse_hex4(bytes, pos)?;
                                let combined =
                                    0x10000 + ((code - 0xD800) << 10) + (low.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                            } else {
                                None
                            }
                        } else {
                            char::from_u32(code)
                        };
                        match c {
                            Some(c) => out.push(c),
                            None => {
                                return Err(format!("byte {}: invalid \\u escape", *pos));
                            }
                        }
                    }
                    other => {
                        return Err(format!("byte {}: unknown escape \\{}", *pos, other as char));
                    }
                }
            }
            // Multi-byte UTF-8: copy the whole character through.
            b if b >= 0x80 => {
                let rest = std::str::from_utf8(&bytes[*pos - 1..])
                    .map_err(|_| format!("byte {}: invalid UTF-8", *pos - 1))?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8() - 1;
            }
            b => out.push(b as char),
        }
    }
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, String> {
    let Some(hex) = bytes.get(*pos..*pos + 4) else {
        return Err(format!("byte {}: truncated \\u escape", *pos));
    };
    let text = std::str::from_utf8(hex).map_err(|_| format!("byte {}: bad \\u escape", *pos))?;
    let code =
        u32::from_str_radix(text, 16).map_err(|_| format!("byte {}: bad \\u escape", *pos))?;
    *pos += 4;
    Ok(code)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for text in ["null", "true", "false", "0", "42", "-3.5", "1.25e3"] {
            let v = Json::parse(text).unwrap();
            let rendered = v.render();
            assert_eq!(Json::parse(&rendered).unwrap(), v, "{text}");
        }
        assert_eq!(Json::parse("42").unwrap(), Json::UInt(42));
        assert_eq!(Json::parse("-2").unwrap(), Json::Num(-2.0));
    }

    #[test]
    fn u64_seeds_survive_exactly() {
        let seed = 0xDEAD_BEEF_CAFE_F00Du64; // > 2^53: f64 would corrupt it
        let v = Json::UInt(seed);
        let back = Json::parse(&v.render()).unwrap();
        assert_eq!(back.as_u64(), Some(seed));
    }

    #[test]
    fn f64_shortest_display_roundtrips() {
        for v in [0.1, 1.0 / 3.0, 99.999999999, f64::MIN_POSITIVE] {
            let back = Json::parse(&num(v, "x").render()).unwrap();
            assert_eq!(back.as_f64(), Some(v), "{v}");
        }
    }

    #[test]
    fn strings_escape_and_unescape() {
        let nasty = "line1\nline2\t\"quoted\" \\slash\\ héllo \u{1}";
        let v = Json::Str(nasty.to_owned());
        let rendered = v.render();
        assert!(!rendered.contains('\n'), "rendering is single-line");
        assert_eq!(Json::parse(&rendered).unwrap(), v);
        // Standard escapes from foreign producers parse too.
        assert_eq!(
            Json::parse(r#""a\u0041\/b""#).unwrap(),
            Json::Str("aA/b".into())
        );
        // Surrogate pair.
        assert_eq!(
            Json::parse(r#""\ud83d\ude00""#).unwrap(),
            Json::Str("\u{1F600}".into())
        );
    }

    #[test]
    fn containers_roundtrip_and_preserve_order() {
        let text = r#" { "b" : [1, 2, {"x": null}], "a" : "y" } "#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.render(), r#"{"b":[1,2,{"x":null}],"a":"y"}"#);
        assert_eq!(v.get("a").and_then(Json::as_str), Some("y"));
        assert_eq!(
            v.get("b").and_then(Json::as_arr).map(<[Json]>::len),
            Some(3)
        );
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn malformed_input_errors_with_position() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "1.2.3",
            "{} trailing",
            "\"\\q\"",
            "\"\\ud800\"",
            "1e999",
        ] {
            let err = Json::parse(bad).unwrap_err();
            assert!(err.contains("byte"), "{bad:?} -> {err}");
        }
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn non_finite_numbers_are_rejected_at_construction() {
        num(f64::NAN, "coverage");
    }
}
