//! Figure 11 — "3-coverage under random failures."
//!
//! Each scheme deploys for k = 3; then a random fraction of all nodes
//! fails and we measure the percentage of points still 3-covered.
//! Expected shape: random placement (hugely over-provisioned) degrades
//! most gracefully; the DECOR variants beat the centralized greedy (their
//! extra nodes double as redundancy); everything decreases monotonically
//! in the failure fraction.

use crate::common::{deploy, ExpParams};
use crate::stats::mean;
use crate::table::Table;
use decor_core::parallel::run_replicas;
use decor_core::restore::coverage_after_failure;
use decor_core::SchemeKind;
use decor_net::FailurePlan;

/// The coverage requirement of the figure.
pub const K: u32 = 3;

/// Failure percentages swept (paper: 0..30%).
pub const FAIL_PCTS: [u32; 7] = [0, 5, 10, 15, 20, 25, 30];

/// Runs the experiment. Columns: failed %, then surviving 3-coverage %
/// per scheme.
pub fn run(params: &ExpParams) -> Table {
    let mut columns = vec!["failed_pct".to_owned()];
    columns.extend(SchemeKind::ALL.iter().map(|s| s.label().to_owned()));
    let mut t = Table::new(
        "fig11",
        format!("{K}-coverage under random failures"),
        columns,
    );
    // Deploy once per (scheme, seed); evaluate every failure level on a
    // clone so levels are comparable.
    let mut series: Vec<Vec<f64>> = Vec::new();
    for &scheme in &SchemeKind::ALL {
        let per_seed = run_replicas(params.seeds, params.base_seed ^ 0x11, |i, seed| {
            let (map, _, cfg) = deploy(params, scheme, K, seed);
            FAIL_PCTS
                .iter()
                .map(|&pct| {
                    let mut m = map.clone();
                    let plan = FailurePlan::Fraction {
                        frac: pct as f64 / 100.0,
                        seed: seed ^ (i as u64) << 32 ^ pct as u64,
                    };
                    coverage_after_failure(&mut m, &cfg, &plan, K) * 100.0
                })
                .collect::<Vec<f64>>()
        });
        let per_pct: Vec<f64> = (0..FAIL_PCTS.len())
            .map(|pi| mean(&per_seed.iter().map(|s| s[pi]).collect::<Vec<_>>()))
            .collect();
        series.push(per_pct);
    }
    for (pi, &pct) in FAIL_PCTS.iter().enumerate() {
        let mut row = vec![pct as f64];
        row.extend(series.iter().map(|s| s[pi]));
        t.push_row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_degrades_monotonically() {
        // Scaled-down variant (k=2) so the quick run stays fast; the
        // monotonicity and ordering logic is identical.
        let params = ExpParams::quick();
        let scheme = SchemeKind::Centralized;
        let per_seed = run_replicas(params.seeds, params.base_seed, |_, seed| {
            let (map, _, cfg) = deploy(&params, scheme, 2, seed);
            [0u32, 15, 30]
                .iter()
                .map(|&pct| {
                    let mut m = map.clone();
                    let plan = FailurePlan::Fraction {
                        frac: pct as f64 / 100.0,
                        seed: seed ^ pct as u64,
                    };
                    coverage_after_failure(&mut m, &cfg, &plan, 2) * 100.0
                })
                .collect::<Vec<f64>>()
        });
        for s in &per_seed {
            assert_eq!(s[0], 100.0, "no failures, full coverage");
            assert!(s[1] >= s[2] - 1e-9, "monotone degradation: {s:?}");
            assert!(s[2] < 100.0, "30% failures must cost something");
        }
    }

    #[test]
    fn random_deployment_tolerates_failures_best() {
        let params = ExpParams::quick();
        let survive = |scheme: SchemeKind| {
            let v = run_replicas(params.seeds, params.base_seed, |_, seed| {
                let (mut map, _, cfg) = deploy(&params, scheme, 2, seed);
                let plan = FailurePlan::Fraction {
                    frac: 0.3,
                    seed: seed ^ 7,
                };
                coverage_after_failure(&mut map, &cfg, &plan, 2) * 100.0
            });
            mean(&v)
        };
        let random = survive(SchemeKind::Random);
        let central = survive(SchemeKind::Centralized);
        assert!(
            random > central,
            "random ({random}) must out-survive centralized ({central})"
        );
    }
}
