//! `decor-serve` — the long-running batch front-end of the scenario
//! matrix runner.
//!
//! Reads a matrix of scenario specs (JSONL file or stdin), executes it on
//! the work-stealing [`decor_exp::MatrixRunner`], and streams results as
//! JSONL: optional per-run lines as they finish, per-cell summaries, and
//! a final outcome line with throughput and utilization. With
//! `--checkpoint <path>` every completed run is appended to a journal;
//! restarting with the same journal resumes where the dead process
//! stopped and produces the same result set as an uninterrupted run.
//!
//! ```text
//! decor-serve gen --schemes centralized,grid-small --ks 1,2 --runs 200 \
//!   | decor-serve run --threads 8 --checkpoint /tmp/matrix.journal
//! ```

use decor_exp::cli::{parse_args, CliArgs};
use decor_exp::scenario::{ScenarioMatrix, ScenarioSpec, Workload};
use decor_exp::{aggregate, CheckpointJournal, MatrixRunner, RunnerHooks};
use std::io::Write;
use std::sync::Mutex;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match run_main(&args) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("decor-serve: {e}");
            eprintln!(
                "usage: decor-serve gen [--workload W] [--schemes A,B] [--ks 1,2] [--losses 0,10]"
            );
            eprintln!(
                "           [--replicas N] [--points N] [--initial N] [--field F] [--seed S]"
            );
            eprintln!("           [--trace true] [--runs CAP] [--out FILE]");
            eprintln!("       decor-serve run [--spec FILE|-] [--out FILE|-] [--threads N]");
            eprintln!("           [--checkpoint FILE] [--per-run true]");
            1
        }
    };
    std::process::exit(code);
}

fn run_main(args: &[String]) -> Result<(), String> {
    let args = parse_args(args)?;
    match args.command.as_str() {
        "gen" => cmd_gen(&args),
        "run" => cmd_run(&args),
        other => Err(format!("unknown subcommand '{other}' (gen | run)")),
    }
}

fn parse_list<T: std::str::FromStr>(text: &str, flag: &str) -> Result<Vec<T>, String> {
    text.split(',')
        .map(|p| {
            p.trim()
                .parse::<T>()
                .map_err(|_| format!("flag --{flag}: cannot parse '{p}'"))
        })
        .collect()
}

/// Builds a matrix from axis flags and writes it as spec JSONL.
fn cmd_gen(args: &CliArgs) -> Result<(), String> {
    let schemes =
        parse_list::<String>(args.get_or("schemes", "centralized,grid-small"), "schemes")?
            .iter()
            .map(|s| decor_core::SchemeKind::parse_spec_name(s))
            .collect::<Result<Vec<_>, _>>()?;
    let ks: Vec<u32> = parse_list(args.get_or("ks", "1,2,3"), "ks")?;
    let losses: Vec<u32> = parse_list(args.get_or("losses", "0"), "losses")?;
    let template = ScenarioSpec {
        workload: Workload::parse_spec_name(args.get_or("workload", "deploy"))?,
        // Quick-experiment scale by default: gen exists to produce large
        // *matrices* of small runs, not large runs.
        field_side: args.num_or("field", 100.0)?,
        n_points: args.num_or("points", 500)?,
        initial_nodes: args.num_or("initial", 60)?,
        replicas: args.num_or("replicas", 5)?,
        base_seed: args.num_or("seed", 0xDEC0_2007u64)?,
        trace: args.get_or("trace", "false") == "true",
        chaos_seed: match args.flags.get("chaos-seed") {
            Some(_) => Some(args.num_or("chaos-seed", 0u64)?),
            None => None,
        },
        ..ScenarioSpec::default()
    };
    let mut matrix = ScenarioMatrix::axes(&template, &schemes, &ks, &losses)?;
    if let Some(cap) = args.flags.get("runs") {
        let cap: usize = cap
            .parse()
            .map_err(|_| format!("flag --runs: cannot parse '{cap}'"))?;
        matrix = matrix.capped(cap)?;
    }
    let mut out = open_out(args.get_or("out", "-"))?;
    out.write_all(matrix.to_jsonl().as_bytes())
        .and_then(|_| out.flush())
        .map_err(|e| format!("writing matrix: {e}"))?;
    eprintln!(
        "decor-serve: generated {} cells, {} runs",
        matrix.cells().len(),
        matrix.n_runs()
    );
    Ok(())
}

/// Executes a spec matrix, streaming results.
fn cmd_run(args: &CliArgs) -> Result<(), String> {
    let spec_path = args.get_or("spec", "-");
    let text = if spec_path == "-" {
        let mut buf = String::new();
        std::io::Read::read_to_string(&mut std::io::stdin().lock(), &mut buf)
            .map_err(|e| format!("reading stdin: {e}"))?;
        buf
    } else {
        std::fs::read_to_string(spec_path).map_err(|e| format!("{spec_path}: {e}"))?
    };
    let matrix = ScenarioMatrix::from_jsonl(&text)?;

    let threads = match args.flags.get("threads") {
        Some(_) => args.num_or("threads", 1usize)?.max(1),
        None => decor_core::parallel::default_threads(),
    };
    let per_run = args.get_or("per-run", "false") == "true";
    let out = Mutex::new(open_out(args.get_or("out", "-"))?);

    // Checkpointing: an existing journal resumes the matrix it names; a
    // fresh path starts one. Completed runs append as they finish, so a
    // crash loses at most the line being written.
    let mut skip = std::collections::BTreeMap::new();
    let journal = match args.flags.get("checkpoint") {
        None => None,
        Some(path) => {
            let file = if std::path::Path::new(path).exists() {
                let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
                skip = CheckpointJournal::load(&text, &matrix)?;
                eprintln!(
                    "decor-serve: resuming from {path} ({} of {} runs done)",
                    skip.len(),
                    matrix.n_runs()
                );
                std::fs::OpenOptions::new()
                    .append(true)
                    .open(path)
                    .map_err(|e| format!("{path}: {e}"))?
            } else {
                let mut f = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
                writeln!(f, "{}", CheckpointJournal::header(&matrix))
                    .map_err(|e| format!("{path}: {e}"))?;
                f
            };
            Some(Mutex::new(file))
        }
    };

    // One render buffer per worker thread, reused across every result that
    // thread reports — steady-state streaming does not allocate a fresh
    // line string per run.
    thread_local! {
        static LINE_BUF: std::cell::RefCell<String> =
            const { std::cell::RefCell::new(String::new()) };
    }
    let on_result = |r: &decor_exp::RunResult| {
        LINE_BUF.with(|buf| {
            let mut line = buf.borrow_mut();
            r.to_json_into(&mut line);
            if let Some(j) = &journal {
                let mut f = j.lock().expect("journal lock");
                if let Err(e) = writeln!(f, "{line}").and_then(|_| f.flush()) {
                    eprintln!("decor-serve: checkpoint write failed: {e}");
                }
            }
            if per_run {
                let mut o = out.lock().expect("out lock");
                if writeln!(o, "{line}").is_err() {
                    // A closed pipe downstream is not worth killing the
                    // matrix (the checkpoint still records everything).
                }
            }
        });
    };

    let outcome = MatrixRunner::new(threads).run_with(
        &matrix,
        RunnerHooks {
            skip,
            on_result: Some(&on_result),
            stop_after: None,
        },
    );

    let mut o = out.lock().expect("out lock");
    for summary in aggregate(&matrix, &outcome) {
        writeln!(o, "{}", summary.to_json()).map_err(|e| format!("writing summary: {e}"))?;
    }
    use decor_exp::jsonio::{num, Json};
    let final_line = Json::Obj(vec![
        (
            "matrix_fingerprint".into(),
            Json::UInt(matrix.fingerprint()),
        ),
        ("runs".into(), Json::UInt(matrix.n_runs() as u64)),
        ("executed".into(), Json::UInt(outcome.executed as u64)),
        ("skipped".into(), Json::UInt(outcome.skipped as u64)),
        ("threads".into(), Json::UInt(outcome.threads as u64)),
        ("wall_ns".into(), Json::UInt(outcome.wall_ns)),
        (
            "runs_per_sec".into(),
            num(outcome.runs_per_sec(), "runs_per_sec"),
        ),
        (
            "utilization".into(),
            num(outcome.utilization(), "utilization"),
        ),
        ("complete".into(), Json::Bool(outcome.complete())),
    ])
    .render();
    writeln!(o, "{final_line}").map_err(|e| format!("writing outcome: {e}"))?;
    o.flush().map_err(|e| format!("flushing output: {e}"))?;
    eprintln!(
        "decor-serve: {} runs ({} executed, {} resumed) on {} threads, {:.0} runs/sec, {:.1}% utilization",
        matrix.n_runs(),
        outcome.executed,
        outcome.skipped,
        outcome.threads,
        outcome.runs_per_sec(),
        outcome.utilization() * 100.0,
    );
    Ok(())
}

fn open_out(path: &str) -> Result<Box<dyn Write + Send>, String> {
    if path == "-" {
        Ok(Box::new(std::io::stdout()))
    } else {
        std::fs::File::create(path)
            .map(|f| Box::new(f) as Box<dyn Write + Send>)
            .map_err(|e| format!("{path}: {e}"))
    }
}
