//! Regenerates the DECOR paper's figures as ASCII tables and CSV files.
//!
//! Usage:
//! ```text
//! decor-figures [--quick] [--out DIR] [fig04|fig05|fig06|fig07|fig08|
//!                fig09|fig10|fig11|fig12|fig13|fig14|all]...
//! ```
//!
//! With no figure arguments, `all` is assumed. `--quick` runs the scaled-
//! down configuration (500 points, 2 seeds) instead of the paper's
//! (2000 points, 5 seeds). CSVs land in `DIR` (default `results/`).

use decor_exp::{
    common::ExpParams, fig04, fig05_06, fig07, fig08, fig09, fig10, fig11, fig12, fig13_14, Table,
};
use std::io::Write;

fn write_svg(dir: &str, id: &str, svg: &str) {
    std::fs::create_dir_all(dir).expect("create output directory");
    let path = format!("{dir}/{id}.svg");
    std::fs::write(&path, svg).expect("write svg");
    eprintln!("wrote {path}");
}

/// SVG builders for the qualitative figures.
mod fig_svgs {
    use decor_exp::common::{deploy, ExpParams};
    use decor_exp::fig05_06::{apply_disaster, disaster_disk};
    use decor_exp::svg::{render_svg, Layer};
    use decor_geom::Point;
    use decor_lds::halton_points;

    pub fn field_points(params: &ExpParams) -> String {
        let field = params.field();
        let pts = halton_points(params.n_points, &field);
        render_svg(
            &field,
            &[Layer {
                points: &pts,
                radius: 0.4,
                fill: "black",
                opacity: 0.8,
            }],
            800,
        )
    }

    pub fn deployment(params: &ExpParams) -> String {
        let field = params.field();
        let (map, _, cfg) = deploy(
            params,
            decor_core::SchemeKind::GridSmall,
            1,
            params.base_seed,
        );
        let sensors: Vec<Point> = map.active_sensors().iter().map(|&(_, p)| p).collect();
        render_svg(
            &field,
            &[
                Layer {
                    points: &sensors,
                    radius: cfg.rs,
                    fill: "steelblue",
                    opacity: 0.25,
                },
                Layer {
                    points: &sensors,
                    radius: 0.6,
                    fill: "navy",
                    opacity: 1.0,
                },
            ],
            800,
        )
    }

    pub fn disaster(params: &ExpParams) -> String {
        let field = params.field();
        let (mut map, _, cfg) = deploy(
            params,
            decor_core::SchemeKind::GridSmall,
            1,
            params.base_seed,
        );
        apply_disaster(&mut map, params);
        let sensors: Vec<Point> = map.active_sensors().iter().map(|&(_, p)| p).collect();
        let disc_center = vec![disaster_disk(params).center];
        render_svg(
            &field,
            &[
                Layer {
                    points: &disc_center,
                    radius: disaster_disk(params).radius,
                    fill: "salmon",
                    opacity: 0.35,
                },
                Layer {
                    points: &sensors,
                    radius: cfg.rs,
                    fill: "steelblue",
                    opacity: 0.25,
                },
                Layer {
                    points: &sensors,
                    radius: 0.6,
                    fill: "navy",
                    opacity: 1.0,
                },
            ],
            800,
        )
    }
}

fn write_outputs(dir: &str, tables: &[Table]) {
    std::fs::create_dir_all(dir).expect("create output directory");
    for t in tables {
        println!("{}", t.to_ascii());
        let path = format!("{dir}/{}.csv", t.id);
        let mut f = std::fs::File::create(&path).expect("create csv");
        f.write_all(t.to_csv().as_bytes()).expect("write csv");
        eprintln!("wrote {path}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "results".to_owned());
    let mut figs: Vec<String> = args
        .iter()
        .filter(|a| a.starts_with("fig") || *a == "all" || *a == "ext")
        .cloned()
        .collect();
    if figs.is_empty() {
        figs.push("all".to_owned());
    }
    let params = if quick {
        ExpParams::quick()
    } else {
        ExpParams::paper()
    };
    eprintln!(
        "running {:?} with {} points, {} initial nodes, {} seeds",
        figs, params.n_points, params.initial_nodes, params.seeds
    );

    let want = |name: &str| figs.iter().any(|f| f == name || f == "all");
    let mut tables: Vec<Table> = Vec::new();

    if want("fig04") {
        println!("{}", fig04::render(&params));
        tables.push(fig04::run(&params));
        write_svg(&out_dir, "fig04", &fig_svgs::field_points(&params));
    }
    if want("fig05") {
        println!("{}", fig05_06::render_deployment(&params));
        tables.push(fig05_06::run_deployment(&params));
        write_svg(&out_dir, "fig05", &fig_svgs::deployment(&params));
    }
    if want("fig06") {
        println!("{}", fig05_06::render_disaster(&params));
        tables.push(fig05_06::run_disaster(&params));
        write_svg(&out_dir, "fig06", &fig_svgs::disaster(&params));
    }
    if want("fig07") {
        tables.push(fig07::run(&params));
    }
    if want("fig08") {
        tables.push(fig08::run(&params));
    }
    if want("fig09") {
        tables.push(fig09::run(&params));
    }
    if want("fig10") {
        tables.push(fig10::run(&params));
    }
    if want("fig11") {
        tables.push(fig11::run(&params));
    }
    if want("fig12") {
        tables.push(fig12::run(&params));
    }
    if want("fig13") || want("fig14") {
        let (t13, t14) = fig13_14::run(&params);
        if want("fig13") {
            tables.push(t13);
        }
        if want("fig14") {
            tables.push(t14);
        }
    }
    if figs.iter().any(|f| f == "ext" || f == "all") {
        tables.extend(decor_exp::run_extensions(&params));
    }
    write_outputs(&out_dir, &tables);
}
