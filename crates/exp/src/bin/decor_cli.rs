//! `decor-cli` — deploy, restore and diagnose sensor fields from the
//! command line.
//!
//! ```text
//! decor-cli deploy   --scheme grid-small --k 3 [--points 2000] [--initial 200]
//!                    [--seed 1] [--rs 4] [--rc 8] [--field 100] [--out sensors.csv]
//!                    [--trace-out trace.jsonl]
//!                    [--chaos-seed 7 | --chaos-plan plan.txt]
//! decor-cli restore  --scheme voronoi-big --k 2 --disaster 50,50,24 [--seed 1] ...
//! decor-cli diagnose --in sensors.csv --k 3 [--points 2000] ...
//! decor-cli endure   --scheme centralized --k 3 [--rotate 1] [--always-on 1]
//!                    [--battery 2000] [--awake-cost 1] [--sleep-cost 0.02]
//!                    [--shift-period 1000] [--spares 0] [--max-periods 100000]
//!                    [--timeout-periods 3] [--disaster 50,50,8 --disaster-at 5]
//!                    [--trace-out trace.jsonl]
//! ```

use decor_core::restore::fail_and_restore;
use decor_core::{run_endurance, CoverageMap, DeploymentDiagnostics, EnduranceConfig, Placer};
use decor_exp::cli::{
    params_from, parse_args, parse_disaster, parse_scheme, sensors_from_csv, sensors_to_csv,
    write_trace_out,
};
use decor_lds::halton_points;
use decor_net::FailurePlan;

fn run() -> Result<(), String> {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = parse_args(&raw)?;
    let (params, cfg) = params_from(&args)?;
    match args.command.as_str() {
        "deploy" => {
            let scheme = parse_scheme(args.get_or("scheme", "grid-small"))?;
            let mut map = params.make_map(&cfg, params.initial_nodes, params.base_seed);
            let placer: Box<dyn Placer> = params.placer(scheme, params.base_seed);
            let out = placer.place(&mut map, &cfg);
            let diag = DeploymentDiagnostics::analyze(&mut map, cfg.k, cfg.rs);
            println!(
                "{}: placed {} new sensors in {} rounds",
                placer.name(),
                out.placed.len(),
                out.rounds
            );
            println!("{}", diag.summary());
            if out.messages.protocol_total > 0 {
                println!(
                    "messages: {} total, {:.2}/cell, {:.2}/node (rotated)",
                    out.messages.protocol_total,
                    out.messages.per_cell,
                    out.messages.per_node_rotated
                );
            }
            if let Some(plan) = &cfg.chaos {
                println!(
                    "chaos: injected {} faults; replay with:\n{}",
                    plan.len(),
                    plan.to_text().trim_end()
                );
                let violations = cfg.invariants.violations();
                if violations.is_empty() {
                    println!("invariants: green");
                } else {
                    return Err(format!(
                        "invariant violations:\n  {}",
                        violations.join("\n  ")
                    ));
                }
            }
            if let Some(path) = args.flags.get("out") {
                std::fs::write(path, sensors_to_csv(&map)).map_err(|e| e.to_string())?;
                println!("wrote {path}");
            }
            if let Some(path) = write_trace_out(&args, &cfg)? {
                println!("wrote trace to {path}");
            }
            Ok(())
        }
        "restore" => {
            let scheme = parse_scheme(args.get_or("scheme", "voronoi-big"))?;
            let disk = parse_disaster(args.get_or("disaster", "50,50,24"))?;
            let mut map = params.make_map(&cfg, params.initial_nodes, params.base_seed);
            let placer: Box<dyn Placer> = params.placer(scheme, params.base_seed);
            // Reach full coverage first, then fail and restore.
            placer.place(&mut map, &cfg);
            let plan = FailurePlan::Area { disk };
            let report = fail_and_restore(&mut map, placer.as_ref(), &cfg, &plan, None);
            println!(
                "disaster at ({}, {}) r={} destroyed {} sensors",
                disk.center.x, disk.center.y, disk.radius, report.victims
            );
            println!(
                "coverage: {:.1}% after failure -> {:.1}% after restoring with {} ({} new sensors)",
                report.coverage_after_failure * 100.0,
                report.coverage_after_restore * 100.0,
                placer.name(),
                report.extra_nodes
            );
            if let Some(path) = args.flags.get("out") {
                std::fs::write(path, sensors_to_csv(&map)).map_err(|e| e.to_string())?;
                println!("wrote {path}");
            }
            if let Some(path) = write_trace_out(&args, &cfg)? {
                println!("wrote trace to {path}");
            }
            Ok(())
        }
        "diagnose" => {
            let path = args
                .flags
                .get("in")
                .ok_or("diagnose needs --in sensors.csv")?;
            let csv = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            let sensors = sensors_from_csv(&csv)?;
            let field = params.field();
            let mut map = CoverageMap::new(halton_points(params.n_points, &field), &field, &cfg);
            for (p, rs) in sensors {
                if field.contains(p) {
                    map.add_sensor(p, rs);
                }
            }
            let diag = DeploymentDiagnostics::analyze(&mut map, cfg.k, cfg.rs);
            println!("{}", diag.summary());
            Ok(())
        }
        "endure" => {
            let scheme = parse_scheme(args.get_or("scheme", "centralized"))?;
            let mut cfg = cfg;
            // The endurance loop always duty-cycles unless --always-on;
            // default knobs apply when --rotate was not given.
            cfg.rotation = Some(cfg.rotation.unwrap_or_default());
            let mut map = params.make_map(&cfg, params.initial_nodes, params.base_seed);
            let placer: Box<dyn Placer> = params.placer(scheme, params.base_seed);
            placer.place(&mut map, &cfg);
            let mut e = EnduranceConfig {
                rotate: args.num_or("always-on", 0u32)? == 0,
                spare_budget: args.num_or("spares", 0usize)?,
                max_periods: args.num_or("max-periods", 100_000u64)?,
                timeout_periods: args.num_or("timeout-periods", 3u32)?,
                disasters: Vec::new(),
            };
            if let Some(spec) = args.flags.get("disaster") {
                let disk = parse_disaster(spec)?;
                e.disasters = vec![(args.num_or("disaster-at", 5u64)?, disk)];
            }
            let report = run_endurance(&mut map, placer.as_ref(), &cfg, &e);
            println!(
                "{} for {} periods ({} shifts{})",
                if e.rotate { "rotated" } else { "always on" },
                report.lifetime_periods,
                report.shifts,
                if report.ended_by_horizon {
                    "; horizon reached"
                } else {
                    ""
                }
            );
            println!(
                "deaths: {} battery, {} disaster, {} chaos; {} detected in-network",
                report.battery_deaths,
                report.disaster_deaths,
                report.chaos_deaths,
                report.detected_deaths
            );
            println!(
                "detector: {} false positives, {} sleeping suppressions",
                report.false_positives, report.sleeping_suppressed
            );
            println!(
                "rotation: {} reschedules, {} emergency periods, {} assignments sent",
                report.reschedules, report.emergency_periods, report.assignments_sent
            );
            println!(
                "healing: {} restorations, {} replacement sensors",
                report.restorations, report.extra_nodes
            );
            if let Some(path) = write_trace_out(&args, &cfg)? {
                println!("wrote trace to {path}");
            }
            Ok(())
        }
        other => Err(format!(
            "unknown subcommand '{other}' (deploy | restore | diagnose | endure)"
        )),
    }
}

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
}
