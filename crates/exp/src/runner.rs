//! Work-stealing matrix runner with checkpoint journals.
//!
//! [`MatrixRunner`] drives a [`ScenarioMatrix`] to completion over a pool
//! of scoped worker threads, using the same atomic-index stealing as
//! [`decor_core::parallel::run_replicas_with_threads`]: workers claim run
//! indices with a `fetch_add`, accumulate `(index, result)` pairs locally,
//! and the pairs are scattered into their slots after the joins — no
//! shared lock on the hot path, results identical for every worker count.
//!
//! Long matrices checkpoint through a [`CheckpointJournal`]: a header line
//! pinning the matrix fingerprint followed by one [`RunResult`] JSON line
//! per completed run, appended as runs finish. A journal written by a run
//! that died mid-flight (truncated last line included) restores into a
//! skip-map, and the resumed matrix is bit-identical to an uninterrupted
//! one — `tests/matrix_checkpoint.rs` pins this end to end.

use crate::scenario::{RunResult, ScenarioMatrix};
use crate::stats::mean;
use decor_core::parallel::default_threads;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Optional knobs for [`MatrixRunner::run_with`].
#[derive(Default)]
pub struct RunnerHooks<'a> {
    /// Runs already completed (index in matrix expansion order →
    /// restored result). Skipped runs are copied into the outcome
    /// without executing and do not count toward `stop_after`.
    pub skip: BTreeMap<usize, RunResult>,
    /// Called as each run finishes, from worker threads — the streaming
    /// output / journal-append hook. Must be cheap or internally locked.
    pub on_result: Option<&'a (dyn Fn(&RunResult) + Sync)>,
    /// Execute at most this many runs, then stop claiming work (the
    /// "process died mid-flight" lever for checkpoint tests). Remaining
    /// slots stay `None` in the outcome.
    pub stop_after: Option<usize>,
}

/// What a matrix run produced.
#[derive(Debug)]
pub struct MatrixOutcome {
    /// One slot per run in matrix expansion order; `None` only when
    /// `stop_after` cut the run short.
    pub results: Vec<Option<RunResult>>,
    /// Wall time of the whole matrix, nanoseconds.
    pub wall_ns: u64,
    /// Time workers spent inside `execute_run`, summed across workers.
    pub busy_ns: u64,
    /// Worker threads used.
    pub threads: usize,
    /// Runs actually executed this invocation.
    pub executed: usize,
    /// Runs restored from the skip-map.
    pub skipped: usize,
}

impl MatrixOutcome {
    /// Did every run produce a result?
    pub fn complete(&self) -> bool {
        self.results.iter().all(|r| r.is_some())
    }

    /// Fraction of the pool's wall-clock capacity spent executing runs —
    /// the saturation number the PR8 bench gates (>95% on a big matrix).
    pub fn utilization(&self) -> f64 {
        if self.wall_ns == 0 || self.threads == 0 {
            return 0.0;
        }
        self.busy_ns as f64 / (self.wall_ns as f64 * self.threads as f64)
    }

    /// Executed runs per wall-clock second.
    pub fn runs_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.executed as f64 / (self.wall_ns as f64 / 1e9)
    }

    /// The deterministic identity of the result set: one fingerprint line
    /// per completed run, expansion order, wall times zeroed. Two runs of
    /// the same matrix must agree on this whatever the thread count,
    /// checkpointing, or tracing (traces are compared too).
    pub fn fingerprint_lines(&self) -> Vec<String> {
        self.results
            .iter()
            .flatten()
            .map(|r| r.fingerprint_json())
            .collect()
    }
}

/// The work-stealing executor.
#[derive(Clone, Copy, Debug)]
pub struct MatrixRunner {
    threads: usize,
}

impl MatrixRunner {
    /// A runner with an explicit worker count (`>= 1` enforced).
    pub fn new(threads: usize) -> Self {
        MatrixRunner {
            threads: threads.max(1),
        }
    }

    /// A runner sized by [`default_threads`] — hardware parallelism under
    /// the `DECOR_THREADS` override.
    pub fn auto() -> Self {
        MatrixRunner::new(default_threads())
    }

    /// The worker count this runner uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs the whole matrix.
    pub fn run(&self, matrix: &ScenarioMatrix) -> MatrixOutcome {
        self.run_with(matrix, RunnerHooks::default())
    }

    /// Runs the matrix under [`RunnerHooks`].
    pub fn run_with(&self, matrix: &ScenarioMatrix, hooks: RunnerHooks<'_>) -> MatrixOutcome {
        let runs = matrix.expand();
        let cells = matrix.cells();
        let n = runs.len();
        let threads = self.threads.min(n.max(1));
        let stop_budget = hooks.stop_after.unwrap_or(usize::MAX);
        let t0 = std::time::Instant::now();

        let next = AtomicUsize::new(0);
        let claimed = AtomicUsize::new(0);
        let mut results: Vec<Option<RunResult>> = (0..n).map(|_| None).collect();
        let mut skipped = 0usize;
        // Skipped slots are filled up front, outside the pool.
        for (&i, cached) in &hooks.skip {
            if i < n {
                results[i] = Some(cached.clone());
                skipped += 1;
            }
        }
        let skip = &hooks.skip;
        let on_result = hooks.on_result;

        let mut busy_ns = 0u64;
        let mut executed = 0usize;
        crossbeam::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for _ in 0..threads {
                handles.push(scope.spawn(|_| {
                    let mut local: Vec<(usize, RunResult)> = Vec::new();
                    let mut local_busy = 0u64;
                    // Each worker owns one arena: after the first run per
                    // scenario shape, the hot loop reuses its allocations.
                    let mut arena = crate::arena::WorkerArena::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        if skip.contains_key(&i) {
                            continue;
                        }
                        // Claim an execution permit; past the budget the
                        // worker retires (the claim is never returned, so
                        // the cut is exact).
                        if claimed.fetch_add(1, Ordering::Relaxed) >= stop_budget {
                            break;
                        }
                        let run = runs[i];
                        let result =
                            crate::scenario::execute_run_in(&cells[run.cell], &run, &mut arena);
                        local_busy += result.wall_ns;
                        if let Some(f) = on_result {
                            f(&result);
                        }
                        local.push((i, result));
                    }
                    (local, local_busy)
                }));
            }
            for h in handles {
                let (local, local_busy) = h.join().expect("matrix worker panicked");
                busy_ns += local_busy;
                executed += local.len();
                for (i, out) in local {
                    debug_assert!(results[i].is_none(), "run {i} computed twice");
                    results[i] = Some(out);
                }
            }
        })
        .expect("matrix scope failed");

        MatrixOutcome {
            results,
            wall_ns: t0.elapsed().as_nanos() as u64,
            busy_ns,
            threads,
            executed,
            skipped,
        }
    }
}

/// Aggregated view of one cell: the replica means the figure tables print.
/// Means are computed with [`crate::stats::mean`] over replica order, so a
/// refactored figure module reproduces its legacy numbers bit for bit.
#[derive(Clone, Debug, PartialEq)]
pub struct CellSummary {
    /// Cell index in the matrix.
    pub cell: usize,
    /// The cell's label.
    pub name: String,
    /// Replicas aggregated (None-slots from a stopped run are excluded —
    /// check [`MatrixOutcome::complete`] before trusting means).
    pub replicas: usize,
    /// Mean final coverage, percent.
    pub mean_coverage_pct: f64,
    /// Mean uncovered area.
    pub mean_missed_area: f64,
    /// Mean sensors active after the run.
    pub mean_total_sensors: f64,
    /// Mean sensors placed.
    pub mean_placed: f64,
    /// Mean transport retries.
    pub mean_retries: f64,
    /// Mean notices that exhausted their retry budget.
    pub mean_gave_up: f64,
    /// Did every aggregated replica reach full coverage?
    pub all_fully_covered: bool,
    /// Invariant violations summed across replicas.
    pub invariant_violations: usize,
    /// Probe means (failure-probe cells only).
    pub mean_detection_rate_pct: Option<f64>,
    /// Mean false alarms.
    pub mean_false_alarms: Option<f64>,
    /// Mean worst detection latency, periods.
    pub mean_worst_latency_periods: Option<f64>,
}

impl CellSummary {
    /// Canonical single-line JSON (the `decor-serve` summary stream).
    pub fn to_json(&self) -> String {
        use crate::jsonio::{num, Json};
        let opt = |v: Option<f64>, what: &str| match v {
            Some(x) => num(x, what),
            None => Json::Null,
        };
        Json::Obj(vec![
            ("cell".into(), Json::UInt(self.cell as u64)),
            ("name".into(), Json::Str(self.name.clone())),
            ("replicas".into(), Json::UInt(self.replicas as u64)),
            (
                "mean_coverage_pct".into(),
                num(self.mean_coverage_pct, "mean_coverage_pct"),
            ),
            (
                "mean_missed_area".into(),
                num(self.mean_missed_area, "mean_missed_area"),
            ),
            (
                "mean_total_sensors".into(),
                num(self.mean_total_sensors, "mean_total_sensors"),
            ),
            ("mean_placed".into(), num(self.mean_placed, "mean_placed")),
            (
                "mean_retries".into(),
                num(self.mean_retries, "mean_retries"),
            ),
            (
                "mean_gave_up".into(),
                num(self.mean_gave_up, "mean_gave_up"),
            ),
            (
                "all_fully_covered".into(),
                Json::Bool(self.all_fully_covered),
            ),
            (
                "invariant_violations".into(),
                Json::UInt(self.invariant_violations as u64),
            ),
            (
                "mean_detection_rate_pct".into(),
                opt(self.mean_detection_rate_pct, "mean_detection_rate_pct"),
            ),
            (
                "mean_false_alarms".into(),
                opt(self.mean_false_alarms, "mean_false_alarms"),
            ),
            (
                "mean_worst_latency_periods".into(),
                opt(
                    self.mean_worst_latency_periods,
                    "mean_worst_latency_periods",
                ),
            ),
        ])
        .render()
    }
}

/// Collapses a matrix outcome into per-cell summaries (matrix order).
pub fn aggregate(matrix: &ScenarioMatrix, outcome: &MatrixOutcome) -> Vec<CellSummary> {
    let mut per_cell: Vec<Vec<&RunResult>> = vec![Vec::new(); matrix.cells().len()];
    for r in outcome.results.iter().flatten() {
        per_cell[r.cell].push(r);
    }
    // Expansion order is replica order within a cell, so each bucket is
    // already sorted — which keeps the f64 summation order identical to
    // the legacy sequential loops.
    matrix
        .cells()
        .iter()
        .enumerate()
        .map(|(cell, spec)| {
            let rs = &per_cell[cell];
            let col =
                |f: &dyn Fn(&RunResult) -> f64| mean(&rs.iter().map(|r| f(r)).collect::<Vec<_>>());
            let probes: Vec<_> = rs.iter().filter_map(|r| r.probe).collect();
            let probe_col = |f: &dyn Fn(&crate::scenario::ProbeStats) -> f64| {
                if probes.len() == rs.len() && !probes.is_empty() {
                    Some(mean(&probes.iter().map(f).collect::<Vec<_>>()))
                } else {
                    None
                }
            };
            CellSummary {
                cell,
                name: spec.name.clone(),
                replicas: rs.len(),
                mean_coverage_pct: col(&|r| r.coverage_pct),
                mean_missed_area: col(&|r| r.missed_area),
                mean_total_sensors: col(&|r| r.total_sensors as f64),
                mean_placed: col(&|r| r.placed as f64),
                mean_retries: col(&|r| r.retries as f64),
                mean_gave_up: col(&|r| r.gave_up as f64),
                all_fully_covered: !rs.is_empty() && rs.iter().all(|r| r.fully_covered),
                invariant_violations: rs.iter().map(|r| r.invariant_violations).sum(),
                mean_detection_rate_pct: probe_col(&|p| p.detection_rate_pct),
                mean_false_alarms: probe_col(&|p| p.false_alarms),
                mean_worst_latency_periods: probe_col(&|p| p.worst_latency_periods),
            }
        })
        .collect()
}

/// The checkpoint journal format: a header line naming the matrix, then
/// one [`RunResult`] line per completed run in completion (not expansion)
/// order. Append-only, so a crash can at worst truncate the final line —
/// [`CheckpointJournal::load`] tolerates exactly that.
pub struct CheckpointJournal;

impl CheckpointJournal {
    /// The header line for a matrix (no trailing newline).
    pub fn header(matrix: &ScenarioMatrix) -> String {
        use crate::jsonio::Json;
        Json::Obj(vec![
            ("journal".into(), Json::Str("decor-matrix".into())),
            ("fingerprint".into(), Json::UInt(matrix.fingerprint())),
            ("n_runs".into(), Json::UInt(matrix.n_runs() as u64)),
        ])
        .render()
    }

    /// Restores a journal into a [`RunnerHooks::skip`] map, verifying it
    /// belongs to `matrix`. A truncated final line (the crash case) is
    /// dropped silently; corruption anywhere else is an error.
    pub fn load(text: &str, matrix: &ScenarioMatrix) -> Result<BTreeMap<usize, RunResult>, String> {
        use crate::jsonio::Json;
        let mut lines = text.lines().enumerate();
        let (_, header) = lines.next().ok_or("checkpoint journal: empty file")?;
        let h = Json::parse(header).map_err(|e| format!("checkpoint journal header: {e}"))?;
        if h.get("journal").and_then(|v| v.as_str()) != Some("decor-matrix") {
            return Err("checkpoint journal: not a decor-matrix journal".into());
        }
        let fp = h
            .get("fingerprint")
            .and_then(|v| v.as_u64())
            .ok_or("checkpoint journal: header missing fingerprint")?;
        if fp != matrix.fingerprint() {
            return Err(format!(
                "checkpoint journal: matrix fingerprint mismatch \
                 (journal {fp:#x}, spec {:#x}) — refusing to resume \
                 against a different matrix",
                matrix.fingerprint()
            ));
        }
        // Map (cell, replica) to the expansion index.
        let mut offset = Vec::with_capacity(matrix.cells().len());
        let mut acc = 0usize;
        for c in matrix.cells() {
            offset.push(acc);
            acc += c.replicas;
        }
        let mut skip = BTreeMap::new();
        let mut pending: Vec<(usize, &str)> = lines.filter(|(_, l)| !l.trim().is_empty()).collect();
        let last = pending.pop();
        let mut insert = |lineno: usize, line: &str, tolerant: bool| -> Result<(), String> {
            match RunResult::from_json(line) {
                Ok(r) => {
                    let cell = matrix.cells().get(r.cell).ok_or_else(|| {
                        format!("line {}: cell {} out of range", lineno + 1, r.cell)
                    })?;
                    if r.replica >= cell.replicas {
                        return Err(format!(
                            "line {}: replica {} out of range for cell {}",
                            lineno + 1,
                            r.replica,
                            r.cell
                        ));
                    }
                    skip.insert(offset[r.cell] + r.replica, r);
                    Ok(())
                }
                Err(e) if tolerant => {
                    // The crash-truncated tail: drop it, the run re-executes.
                    let _ = e;
                    Ok(())
                }
                Err(e) => Err(format!("line {}: {e}", lineno + 1)),
            }
        };
        for (lineno, line) in pending {
            insert(lineno, line, false)?;
        }
        if let Some((lineno, line)) = last {
            insert(lineno, line, true)?;
        }
        Ok(skip)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::ExpParams;
    use crate::scenario::{ScenarioSpec, Workload};
    use decor_core::SchemeKind;
    use std::sync::Mutex;

    fn tiny_matrix() -> ScenarioMatrix {
        let p = ExpParams::quick();
        let mut a = ScenarioSpec::from_params(&p, SchemeKind::Centralized, 1);
        a.name = "a".into();
        a.replicas = 3;
        let mut b = ScenarioSpec::from_params(&p, SchemeKind::GridSmall, 1);
        b.name = "b".into();
        b.replicas = 2;
        ScenarioMatrix::new(vec![a, b]).unwrap()
    }

    #[test]
    fn thread_counts_agree_bitwise() {
        let m = tiny_matrix();
        let reference = MatrixRunner::new(1).run(&m);
        assert!(reference.complete());
        assert_eq!(reference.executed, 5);
        for threads in [2, 8] {
            let got = MatrixRunner::new(threads).run(&m);
            assert_eq!(
                got.fingerprint_lines(),
                reference.fingerprint_lines(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn on_result_streams_every_run() {
        let m = tiny_matrix();
        let seen = Mutex::new(Vec::new());
        let hook = |r: &RunResult| seen.lock().unwrap().push((r.cell, r.replica));
        let out = MatrixRunner::new(4).run_with(
            &m,
            RunnerHooks {
                on_result: Some(&hook),
                ..RunnerHooks::default()
            },
        );
        let mut got = seen.into_inner().unwrap();
        got.sort_unstable();
        assert_eq!(got, vec![(0, 0), (0, 1), (0, 2), (1, 0), (1, 1)]);
        assert!(out.complete());
    }

    #[test]
    fn stop_after_cuts_exactly_and_skip_resumes() {
        let m = tiny_matrix();
        let full = MatrixRunner::new(2).run(&m);
        let partial = MatrixRunner::new(2).run_with(
            &m,
            RunnerHooks {
                stop_after: Some(2),
                ..RunnerHooks::default()
            },
        );
        assert_eq!(partial.executed, 2);
        assert!(!partial.complete());
        // Resume from the partial results.
        let mut skip = BTreeMap::new();
        for (i, r) in partial.results.iter().enumerate() {
            if let Some(r) = r {
                skip.insert(i, r.clone());
            }
        }
        let resumed = MatrixRunner::new(2).run_with(
            &m,
            RunnerHooks {
                skip,
                ..RunnerHooks::default()
            },
        );
        assert_eq!(resumed.skipped, 2);
        assert_eq!(resumed.executed, 3);
        assert!(resumed.complete());
        assert_eq!(resumed.fingerprint_lines(), full.fingerprint_lines());
    }

    #[test]
    fn outcome_accounting_is_sane() {
        let m = tiny_matrix();
        let out = MatrixRunner::new(2).run(&m);
        assert!(out.wall_ns > 0);
        assert!(out.busy_ns > 0);
        assert!(out.runs_per_sec() > 0.0);
        let u = out.utilization();
        assert!(u > 0.0 && u <= 1.0, "utilization {u}");
    }

    #[test]
    fn aggregate_matches_legacy_mean() {
        let m = tiny_matrix();
        let out = MatrixRunner::new(4).run(&m);
        let summaries = aggregate(&m, &out);
        assert_eq!(summaries.len(), 2);
        // Cell 0 means must equal the sequential stats::mean computation.
        let cell0: Vec<f64> = out.results[..3]
            .iter()
            .map(|r| r.as_ref().unwrap().total_sensors as f64)
            .collect();
        assert_eq!(summaries[0].mean_total_sensors, mean(&cell0));
        assert_eq!(summaries[0].replicas, 3);
        assert_eq!(summaries[1].replicas, 2);
        assert!(summaries[0].all_fully_covered);
        assert!(summaries[0].mean_detection_rate_pct.is_none());
        let json = summaries[0].to_json();
        assert!(json.contains("\"name\":\"a\""), "{json}");
    }

    #[test]
    fn aggregate_carries_probe_columns() {
        let p = ExpParams::quick();
        let mut spec = ScenarioSpec::from_params(&p, SchemeKind::VoronoiSmall, 2);
        spec.workload = Workload::FailureProbe;
        spec.replicas = 2;
        let m = ScenarioMatrix::new(vec![spec]).unwrap();
        let out = MatrixRunner::new(2).run(&m);
        let s = &aggregate(&m, &out)[0];
        assert!(s.mean_detection_rate_pct.unwrap() > 85.0);
        assert!(s.mean_false_alarms.is_some());
        assert!(s.to_json().contains("mean_detection_rate_pct"));
    }

    #[test]
    fn journal_roundtrip_resumes_bit_identically() {
        let m = tiny_matrix();
        let full = MatrixRunner::new(2).run(&m);
        // Journal the first three completions, in arbitrary order.
        let mut journal = CheckpointJournal::header(&m);
        journal.push('\n');
        for i in [4usize, 0, 2] {
            journal.push_str(&full.results[i].as_ref().unwrap().to_json());
            journal.push('\n');
        }
        let skip = CheckpointJournal::load(&journal, &m).unwrap();
        assert_eq!(skip.keys().copied().collect::<Vec<_>>(), vec![0, 2, 4]);
        let resumed = MatrixRunner::new(1).run_with(
            &m,
            RunnerHooks {
                skip,
                ..RunnerHooks::default()
            },
        );
        assert_eq!(resumed.executed, 2);
        assert_eq!(resumed.skipped, 3);
        assert_eq!(resumed.fingerprint_lines(), full.fingerprint_lines());
    }

    #[test]
    fn journal_tolerates_a_truncated_tail_only() {
        let m = tiny_matrix();
        let full = MatrixRunner::new(1).run(&m);
        let line = full.results[0].as_ref().unwrap().to_json();
        let header = CheckpointJournal::header(&m);
        // Truncated last line: dropped, the one intact line survives.
        let crashed = format!("{header}\n{line}\n{}", &line[..line.len() / 2]);
        let skip = CheckpointJournal::load(&crashed, &m).unwrap();
        assert_eq!(skip.len(), 1);
        // The same corruption mid-file is an error.
        let corrupt = format!("{header}\n{}\n{line}\n", &line[..line.len() / 2]);
        let err = CheckpointJournal::load(&corrupt, &m).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn journal_refuses_a_different_matrix() {
        let m = tiny_matrix();
        let other = {
            let mut cells = m.cells().to_vec();
            cells[0].k = 2;
            ScenarioMatrix::new(cells).unwrap()
        };
        let journal = format!("{}\n", CheckpointJournal::header(&other));
        let err = CheckpointJournal::load(&journal, &m).unwrap_err();
        assert!(err.contains("fingerprint mismatch"), "{err}");
        assert!(CheckpointJournal::load("", &m).is_err());
        assert!(CheckpointJournal::load("{\"journal\":\"nope\"}", &m).is_err());
    }
}
