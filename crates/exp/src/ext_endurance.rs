//! Extension — endurance under repeated disasters.
//!
//! The paper evaluates a single failure event; a long-lived network
//! suffers many. This experiment runs `ROUNDS` disaster/restore cycles
//! (each disaster a disc of radius 16 at a seeded random position) and
//! tracks whether repeated in-network restoration stays sustainable:
//!
//! - **extra nodes per cycle** should stay roughly flat — every disaster
//!   destroys a bounded region, and the restorer only refills that hole;
//! - **active sensors** should plateau slightly above the single-shot
//!   deployment size (holes are refilled to the same density), while the
//!   **cumulative** count grows linearly with the disaster count;
//! - coverage must return to 100% after every cycle.

use crate::common::{deploy, ExpParams};
use crate::stats::mean;
use crate::table::Table;
use decor_core::parallel::run_replicas;
use decor_core::restore::fail_and_restore;
use decor_core::SchemeKind;
use decor_geom::{Disk, Point};
use decor_lds::vdc::splitmix64;
use decor_net::FailurePlan;

/// Disaster/restore cycles simulated.
pub const ROUNDS: usize = 8;

/// Disaster disc radius (smaller than §4.2's 24 so repeated events stay
/// local).
pub const DISASTER_R: f64 = 16.0;

/// A deterministic disaster center for cycle `i`.
pub fn disaster_center(params: &ExpParams, seed: u64, i: usize) -> Point {
    let a = splitmix64(seed ^ (i as u64) << 16);
    let b = splitmix64(a);
    let margin = DISASTER_R * 0.5;
    let span = params.field_side - 2.0 * margin;
    Point::new(
        margin + (a >> 11) as f64 / (1u64 << 53) as f64 * span,
        margin + (b >> 11) as f64 / (1u64 << 53) as f64 * span,
    )
}

/// Runs the endurance study with the Voronoi (big rc) scheme at k = 2.
/// Columns: cycle, extra nodes this cycle, active sensors, cumulative
/// sensors, coverage % after restore.
pub fn run(params: &ExpParams) -> Table {
    let mut t = Table::new(
        "ext_endurance",
        format!("{ROUNDS} disaster/restore cycles (Voronoi big rc, k=2, disc r={DISASTER_R})"),
        vec![
            "cycle".into(),
            "extra_nodes".into(),
            "active_sensors".into(),
            "cumulative_sensors".into(),
            "coverage_pct".into(),
        ],
    );
    let k = 2;
    let scheme = SchemeKind::VoronoiBig;
    let per_cycle = run_replicas(params.seeds, params.base_seed ^ 0xE7D, |_, seed| {
        let (mut map, _, cfg) = deploy(params, scheme, k, seed);
        let mut rows = Vec::with_capacity(ROUNDS);
        for cycle in 0..ROUNDS {
            let disk = Disk::new(disaster_center(params, seed, cycle), DISASTER_R);
            let placer = params.placer(scheme, seed ^ (cycle as u64) << 8);
            let plan = FailurePlan::Area { disk };
            let report = fail_and_restore(&mut map, placer.as_ref(), &cfg, &plan, None);
            rows.push((
                report.extra_nodes as f64,
                map.n_active_sensors() as f64,
                map.n_sensors() as f64,
                report.coverage_after_restore * 100.0,
            ));
        }
        rows
    });
    for cycle in 0..ROUNDS {
        t.push_row(vec![
            (cycle + 1) as f64,
            mean(&per_cycle.iter().map(|r| r[cycle].0).collect::<Vec<_>>()),
            mean(&per_cycle.iter().map(|r| r[cycle].1).collect::<Vec<_>>()),
            mean(&per_cycle.iter().map(|r| r[cycle].2).collect::<Vec<_>>()),
            mean(&per_cycle.iter().map(|r| r[cycle].3).collect::<Vec<_>>()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_restoration_is_sustainable() {
        let params = ExpParams::quick();
        let t = run(&params);
        assert_eq!(t.rows.len(), ROUNDS);
        for row in &t.rows {
            assert_eq!(row[4], 100.0, "every cycle must end fully covered");
        }
        // Active sensor count plateaus: the last cycle's active count is
        // within 40% of the first cycle's (no runaway growth).
        let first_active = t.rows[0][2];
        let last_active = t.rows[ROUNDS - 1][2];
        assert!(
            last_active < first_active * 1.4,
            "active sensors must plateau: {first_active} -> {last_active}"
        );
        // Cumulative grows monotonically (dead sensors accumulate).
        for w in t.rows.windows(2) {
            assert!(w[1][3] >= w[0][3]);
        }
        // Per-cycle repair cost stays bounded: max ≤ 4× min over cycles
        // (positions vary, so some slack).
        let costs: Vec<f64> = t.rows.iter().map(|r| r[1]).collect();
        let max = costs.iter().cloned().fold(f64::MIN, f64::max);
        let min = costs.iter().cloned().fold(f64::MAX, f64::min).max(1.0);
        assert!(max / min < 6.0, "repair cost unstable: {costs:?}");
    }

    #[test]
    fn disaster_centers_are_deterministic_and_spread() {
        let params = ExpParams::quick();
        let a = disaster_center(&params, 5, 0);
        let b = disaster_center(&params, 5, 0);
        assert_eq!(a, b);
        let centers: Vec<Point> = (0..ROUNDS)
            .map(|i| disaster_center(&params, 5, i))
            .collect();
        let distinct = centers
            .iter()
            .map(|p| (p.x as i64, p.y as i64))
            .collect::<std::collections::BTreeSet<_>>();
        assert!(
            distinct.len() >= ROUNDS - 1,
            "centers must vary: {centers:?}"
        );
        for c in centers {
            assert!(params.field().contains(c));
        }
    }
}
