//! Extension — endurance under rotation, disasters and chaos.
//!
//! The paper evaluates a single failure event on an always-on network; a
//! long-lived deployment rotates sleep shifts, drains batteries on every
//! message, suffers area disasters and node crashes, and heals itself
//! from a bounded spare budget. This experiment runs the full endurance
//! loop ([`decor_core::run_endurance`]) twice per replica — duty-cycled
//! and always-on — over the same deployment, disaster script and chaos
//! plan, and compares:
//!
//! - **lifetime to first unrecoverable coverage loss** — rotation must
//!   outlive always-on by roughly the coverage degree k;
//! - **false positives** — must be zero: scheduled sleepers are protected
//!   by the three-state lifecycle, so no battery is ever wasted restoring
//!   a node that was merely asleep;
//! - **healing** — the scripted disaster is detected in-network, spares
//!   refill the hole, and replacements are folded into the rotation
//!   (reschedules > 0 on the rotating arm).

use crate::common::{deploy_with, ExpParams};
use crate::stats::mean;
use crate::table::Table;
use decor_core::parallel::run_replicas;
use decor_core::{run_endurance, EnduranceConfig, EnduranceReport, SchemeKind};
use decor_geom::{Disk, Point};
use decor_lds::vdc::splitmix64;
use decor_net::{FaultPlan, RotationConfig};

/// Coverage requirement of the study (the ISSUE's acceptance point).
pub const K: u32 = 3;

/// Disaster disc radius — local enough that the spare budget can refill
/// the hole in one restoration episode.
pub const DISASTER_R: f64 = 8.0;

/// The period the scripted disaster strikes at.
pub const DISASTER_PERIOD: u64 = 5;

/// Replacement sensors the restoration side may spend per run.
pub const SPARES: usize = 80;

/// Horizon cap (both arms die well before this under default batteries).
pub const MAX_PERIODS: u64 = 5_000;

/// A deterministic disaster center for replica `seed`, kept away from
/// the field border so the disc stays inside.
pub fn disaster_center(params: &ExpParams, seed: u64) -> Point {
    let a = splitmix64(seed ^ 0xD15A);
    let b = splitmix64(a);
    let margin = DISASTER_R;
    let span = params.field_side - 2.0 * margin;
    Point::new(
        margin + (a >> 11) as f64 / (1u64 << 53) as f64 * span,
        margin + (b >> 11) as f64 / (1u64 << 53) as f64 * span,
    )
}

/// One replica: runs both arms on identically-built deployments and the
/// same disaster/chaos script.
pub fn endurance_pair(params: &ExpParams, seed: u64) -> (EnduranceReport, EnduranceReport) {
    let arm = |rotate: bool| {
        let (mut map, _, cfg) = deploy_with(params, SchemeKind::Centralized, K, seed, |cfg| {
            cfg.rotation = Some(RotationConfig::default());
            // One early crash, scripted on the transport tick clock.
            cfg.chaos = Some(FaultPlan::parse("2000 crash 1\n").expect("literal plan parses"));
        });
        let e = EnduranceConfig {
            rotate,
            spare_budget: SPARES,
            max_periods: MAX_PERIODS,
            disasters: vec![(
                DISASTER_PERIOD,
                Disk::new(disaster_center(params, seed), DISASTER_R),
            )],
            ..EnduranceConfig::default()
        };
        run_endurance(&mut map, &decor_core::CentralizedGreedy, &cfg, &e)
    };
    (arm(false), arm(true))
}

/// Runs the endurance study. One row per arm (always-on first), columns
/// averaged over the replicas.
pub fn run(params: &ExpParams) -> Table {
    let mut t = Table::new(
        "ext_endurance",
        format!("Endurance with disaster (r={DISASTER_R}) + chaos crash, spares={SPARES}, k={K}"),
        vec![
            "rotating".into(),
            "lifetime_periods".into(),
            "battery_deaths".into(),
            "disaster_deaths".into(),
            "chaos_deaths".into(),
            "detected_deaths".into(),
            "sleeping_suppressed".into(),
            "false_positives".into(),
            "restorations".into(),
            "extra_nodes".into(),
        ],
    );
    let pairs = run_replicas(params.seeds, params.base_seed ^ 0xE7D, |_, seed| {
        endurance_pair(params, seed)
    });
    for (rotating, pick) in [
        (
            0.0,
            Box::new(|p: &(EnduranceReport, EnduranceReport)| p.0.clone())
                as Box<dyn Fn(&(EnduranceReport, EnduranceReport)) -> EnduranceReport>,
        ),
        (
            1.0,
            Box::new(|p: &(EnduranceReport, EnduranceReport)| p.1.clone()),
        ),
    ] {
        let arm: Vec<EnduranceReport> = pairs.iter().map(&pick).collect();
        let col =
            |f: &dyn Fn(&EnduranceReport) -> f64| mean(&arm.iter().map(f).collect::<Vec<_>>());
        t.push_row(vec![
            rotating,
            col(&|r| r.lifetime_periods as f64),
            col(&|r| r.battery_deaths as f64),
            col(&|r| r.disaster_deaths as f64),
            col(&|r| r.chaos_deaths as f64),
            col(&|r| r.detected_deaths as f64),
            col(&|r| r.sleeping_suppressed as f64),
            col(&|r| r.false_positives as f64),
            col(&|r| r.restorations as f64),
            col(&|r| r.extra_nodes as f64),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotation_outlives_always_on_through_disaster_and_chaos() {
        let params = ExpParams::quick();
        let (on, rotated) = endurance_pair(&params, params.base_seed);
        assert!(rotated.shifts > 1, "k=3 must split into shifts");
        assert_eq!(on.false_positives, 0);
        assert_eq!(rotated.false_positives, 0, "sleepers declared dead");
        assert!(
            rotated.sleeping_suppressed > 0,
            "suppression never exercised"
        );
        assert!(rotated.chaos_deaths > 0, "the scripted crash must land");
        assert!(
            rotated.extension_over(&on) >= 2.0,
            "rotation must at least double lifetime: {} vs {}",
            rotated.lifetime_periods,
            on.lifetime_periods
        );
    }

    #[test]
    fn spares_heal_the_disaster_into_the_rotation() {
        let params = ExpParams::quick();
        let (_, rotated) = endurance_pair(&params, params.base_seed);
        assert!(rotated.disaster_deaths > 0, "the disc must hit someone");
        assert!(rotated.restorations > 0, "the hole must be healed");
        assert!(rotated.extra_nodes > 0, "healing spends spares");
        assert!(
            rotated.reschedules > 0,
            "replacements must re-enter the rotation"
        );
    }

    #[test]
    fn disaster_centers_are_deterministic_and_inside() {
        let params = ExpParams::quick();
        let a = disaster_center(&params, 5);
        assert_eq!(a, disaster_center(&params, 5));
        for seed in 0..8 {
            let c = disaster_center(&params, seed);
            assert!(params.field().contains(c));
        }
    }
}
