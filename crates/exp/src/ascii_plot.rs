//! ASCII field renderings for the qualitative figures (4, 5, 6).

use decor_geom::{Aabb, Point};

/// Renders a scatter of points over `field` as a `width × height`
/// character raster. Multiple points per raster cell render as digits
/// (2–9) and `#` for ten or more; a single point renders as `marker`.
pub fn scatter(
    field: &Aabb,
    points: &[Point],
    width: usize,
    height: usize,
    marker: char,
) -> String {
    assert!(width >= 2 && height >= 2, "raster must be at least 2x2");
    let mut counts = vec![0usize; width * height];
    for &p in points {
        if !field.contains(p) {
            continue;
        }
        let u = (p.x - field.min.x) / field.width();
        let v = (p.y - field.min.y) / field.height();
        let cx = ((u * width as f64) as usize).min(width - 1);
        // Row 0 renders the top of the field.
        let cy = height - 1 - ((v * height as f64) as usize).min(height - 1);
        counts[cy * width + cx] += 1;
    }
    let mut s = String::with_capacity((width + 3) * (height + 2));
    s.push('+');
    s.push_str(&"-".repeat(width));
    s.push_str("+\n");
    for row in 0..height {
        s.push('|');
        for col in 0..width {
            let c = counts[row * width + col];
            s.push(match c {
                0 => ' ',
                1 => marker,
                2..=9 => (b'0' + c as u8) as char,
                _ => '#',
            });
        }
        s.push_str("|\n");
    }
    s.push('+');
    s.push_str(&"-".repeat(width));
    s.push_str("+\n");
    s
}

/// Renders two point layers: `base` with `base_marker` and `overlay`
/// drawn on top with `overlay_marker` (overlay wins collisions).
pub fn scatter2(
    field: &Aabb,
    base: &[Point],
    base_marker: char,
    overlay: &[Point],
    overlay_marker: char,
    width: usize,
    height: usize,
) -> String {
    let base_r = scatter(field, base, width, height, base_marker);
    let over_r = scatter(field, overlay, width, height, overlay_marker);
    base_r
        .chars()
        .zip(over_r.chars())
        .map(|(b, o)| {
            if o != ' ' && o != '+' && o != '-' && o != '|' && o != '\n' {
                o
            } else {
                b
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raster_dimensions() {
        let field = Aabb::square(10.0);
        let s = scatter(&field, &[], 20, 5, '.');
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 7); // border + 5 rows + border
        assert_eq!(lines[1].len(), 22); // | + 20 + |
    }

    #[test]
    fn single_point_lands_in_expected_cell() {
        let field = Aabb::square(10.0);
        // Point near the top-left corner of the field (low x, high y).
        let s = scatter(&field, &[Point::new(0.1, 9.9)], 10, 10, '*');
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(&lines[1][1..2], "*", "{s}");
    }

    #[test]
    fn collisions_render_counts() {
        let field = Aabb::square(10.0);
        let pts = vec![Point::new(5.0, 5.0); 3];
        let s = scatter(&field, &pts, 4, 4, '*');
        assert!(s.contains('3'), "{s}");
        let many = vec![Point::new(5.0, 5.0); 15];
        let s2 = scatter(&field, &many, 4, 4, '*');
        assert!(s2.contains('#'));
    }

    #[test]
    fn out_of_field_points_are_skipped() {
        let field = Aabb::square(10.0);
        let s = scatter(&field, &[Point::new(50.0, 50.0)], 6, 6, '*');
        assert!(!s.contains('*'));
    }

    #[test]
    fn overlay_wins_collisions() {
        let field = Aabb::square(10.0);
        let b = vec![Point::new(5.0, 5.0)];
        let o = vec![Point::new(5.0, 5.0)];
        let s = scatter2(&field, &b, '.', &o, 'O', 8, 8);
        assert!(s.contains('O'));
        assert!(!s.contains('.'));
    }
}
