//! Scenario specs: the stable input format of the batch matrix service.
//!
//! The production shape of this system is not one simulation but a fleet
//! of parameter sweeps — scheme × k × loss × chaos seed × field — run
//! continuously (ROADMAP item 2). A [`ScenarioSpec`] describes one *cell*
//! of such a sweep: a workload (plain deployment, or the `ext_loss`-style
//! failure probe), the scenario scale, the scheme under test, and how many
//! replicas to average over. A [`ScenarioMatrix`] is an ordered list of
//! cells; [`ScenarioMatrix::expand`] flattens it into runs with
//! deterministic per-run seeds derived via the same
//! [`replica_seed`] mixing the figure modules have always used, so a
//! matrix run is bit-identical to the legacy sequential loops
//! (pinned by `tests/matrix_differential.rs`).
//!
//! Specs serialize as single-line JSON ([`ScenarioSpec::to_json`] /
//! [`ScenarioSpec::from_json`]) with defaulted-field forward
//! compatibility: fields absent from an old spec file take today's
//! defaults, unknown fields from a newer producer are ignored, and
//! malformed input (bad JSON, unknown scheme or workload, out-of-range
//! values) is a descriptive `Err`, never a panic.

use crate::arena::{deploy_with_in, WorkerArena};
use crate::common::{deploy_with, ExpParams};
use crate::jsonio::{num, Json};
use decor_core::parallel::replica_seed;
use decor_core::{DeploymentConfig, InvariantChecker, LinkConfig, SchemeKind};
use decor_net::{FailurePlan, FaultPlan, HeartbeatConfig, HeartbeatSim, Network};
use serde::{Deserialize, Serialize};

/// What a run actually executes.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Workload {
    /// Place sensors from the initial random deployment until full
    /// k-coverage — the fig-08 family. `loss_pct` puts the placement
    /// notices on the lossy medium.
    Deploy,
    /// The `ext_loss` probe: deploy a centralized k-covered field, fail
    /// `fail_frac` of the sensors, run the heartbeat detector over a
    /// medium with `loss_pct` loss, then restore with the spec's scheme
    /// over the same lossy link. Reports detection metrics alongside the
    /// restoration result.
    FailureProbe,
}

impl Workload {
    /// Stable wire name.
    pub fn spec_name(&self) -> &'static str {
        match self {
            Workload::Deploy => "deploy",
            Workload::FailureProbe => "failure-probe",
        }
    }

    /// Parses [`Workload::spec_name`].
    pub fn parse_spec_name(name: &str) -> Result<Workload, String> {
        match name {
            "deploy" => Ok(Workload::Deploy),
            "failure-probe" => Ok(Workload::FailureProbe),
            other => Err(format!(
                "unknown workload '{other}' (deploy | failure-probe)"
            )),
        }
    }
}

/// One cell of a scenario matrix: a workload at one parameter point,
/// replicated over `replicas` random fields.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Free-form label echoed into results (default: empty).
    pub name: String,
    /// The scheme under test (restoring scheme for the failure probe).
    pub scheme: SchemeKind,
    /// What to execute per run.
    pub workload: Workload,
    /// Coverage requirement.
    pub k: u32,
    /// Field edge length.
    pub field_side: f64,
    /// Approximation points.
    pub n_points: usize,
    /// Initial randomly-deployed sensors.
    pub initial_nodes: usize,
    /// Packet-loss percentage. For [`Workload::Deploy`] this is the
    /// medium the placement notices ride; for [`Workload::FailureProbe`]
    /// it is the probe's lossy medium (the initial centralized deployment
    /// stays lossless, as in `ext_loss`).
    pub loss_pct: u32,
    /// Victim fraction for [`Workload::FailureProbe`] (ignored by
    /// deploy).
    pub fail_frac: f64,
    /// When set, each run generates a [`FaultPlan`] from
    /// `replica_seed(chaos_seed, replica)` and runs with the invariant
    /// checker attached.
    pub chaos_seed: Option<u64>,
    /// Replicas (random fields) this cell averages over.
    pub replicas: usize,
    /// Base seed; replica `i` derives its own via [`replica_seed`].
    pub base_seed: u64,
    /// Attach a JSONL trace sink per run and carry the text in the
    /// result. Tracing never changes results — the differential tier
    /// compares traced and untraced matrices bit-for-bit.
    pub trace: bool,
}

impl Default for ScenarioSpec {
    /// The paper's scenario (§4) under a centralized deploy.
    fn default() -> Self {
        let p = ExpParams::paper();
        ScenarioSpec {
            name: String::new(),
            scheme: SchemeKind::Centralized,
            workload: Workload::Deploy,
            k: 3,
            field_side: p.field_side,
            n_points: p.n_points,
            initial_nodes: p.initial_nodes,
            loss_pct: 0,
            fail_frac: 0.1,
            chaos_seed: None,
            replicas: p.seeds,
            base_seed: p.base_seed,
            trace: false,
        }
    }
}

impl ScenarioSpec {
    /// A spec with the scenario scale taken from experiment parameters
    /// (the bridge the fig/ext modules use).
    pub fn from_params(params: &ExpParams, scheme: SchemeKind, k: u32) -> Self {
        ScenarioSpec {
            scheme,
            k,
            field_side: params.field_side,
            n_points: params.n_points,
            initial_nodes: params.initial_nodes,
            loss_pct: params.loss_pct,
            replicas: params.seeds,
            base_seed: params.base_seed,
            ..ScenarioSpec::default()
        }
    }

    /// The experiment parameters a run of this cell uses. The failure
    /// probe keeps its initial deployment lossless (`ext_loss` semantics):
    /// `loss_pct` only drives the probe medium there.
    pub fn params(&self) -> ExpParams {
        ExpParams {
            field_side: self.field_side,
            n_points: self.n_points,
            initial_nodes: self.initial_nodes,
            seeds: self.replicas,
            base_seed: self.base_seed,
            loss_pct: match self.workload {
                Workload::Deploy => self.loss_pct,
                Workload::FailureProbe => 0,
            },
        }
    }

    /// Validates ranges; every constructor of a matrix calls this so bad
    /// specs surface as errors at the boundary, not panics mid-run.
    pub fn validate(&self) -> Result<(), String> {
        let ctx = |what: &str| format!("spec '{}': {what}", self.name);
        if self.k < 1 {
            return Err(ctx("k must be at least 1"));
        }
        if self.loss_pct >= 100 {
            return Err(ctx("loss_pct must be below 100"));
        }
        if self.replicas == 0 {
            return Err(ctx("replicas must be positive"));
        }
        if self.n_points == 0 {
            return Err(ctx("n_points must be positive"));
        }
        if !(self.field_side.is_finite() && self.field_side > 0.0) {
            return Err(ctx("field_side must be positive and finite"));
        }
        if !(self.fail_frac > 0.0 && self.fail_frac < 1.0) {
            return Err(ctx("fail_frac must be in (0, 1)"));
        }
        Ok(())
    }

    /// Canonical single-line JSON. Every field is always emitted, so the
    /// rendering doubles as the format's documentation.
    pub fn to_json(&self) -> String {
        Json::Obj(vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("scheme".into(), Json::Str(self.scheme.spec_name().into())),
            (
                "workload".into(),
                Json::Str(self.workload.spec_name().into()),
            ),
            ("k".into(), Json::UInt(self.k as u64)),
            ("field_side".into(), num(self.field_side, "field_side")),
            ("n_points".into(), Json::UInt(self.n_points as u64)),
            (
                "initial_nodes".into(),
                Json::UInt(self.initial_nodes as u64),
            ),
            ("loss_pct".into(), Json::UInt(self.loss_pct as u64)),
            ("fail_frac".into(), num(self.fail_frac, "fail_frac")),
            (
                "chaos_seed".into(),
                match self.chaos_seed {
                    Some(s) => Json::UInt(s),
                    None => Json::Null,
                },
            ),
            ("replicas".into(), Json::UInt(self.replicas as u64)),
            ("base_seed".into(), Json::UInt(self.base_seed)),
            ("trace".into(), Json::Bool(self.trace)),
        ])
        .render()
    }

    /// Parses [`ScenarioSpec::to_json`] output — or any forward- or
    /// backward-compatible variant: missing fields take the defaults,
    /// unknown fields are ignored, everything else errors descriptively.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = Json::parse(text).map_err(|e| format!("scenario spec: {e}"))?;
        let Json::Obj(_) = v else {
            return Err("scenario spec: expected a JSON object".into());
        };
        let mut spec = ScenarioSpec::default();
        if let Some(name) = v.get("name") {
            spec.name = req_str(name, "name")?.to_owned();
        }
        let scheme = v
            .get("scheme")
            .ok_or("scenario spec: missing required field 'scheme'")?;
        spec.scheme = SchemeKind::parse_spec_name(req_str(scheme, "scheme")?)?;
        if let Some(w) = v.get("workload") {
            spec.workload = Workload::parse_spec_name(req_str(w, "workload")?)?;
        }
        if let Some(x) = v.get("k") {
            spec.k = req_u64(x, "k")? as u32;
        }
        if let Some(x) = v.get("field_side") {
            spec.field_side = req_f64(x, "field_side")?;
        }
        if let Some(x) = v.get("n_points") {
            spec.n_points = req_u64(x, "n_points")? as usize;
        }
        if let Some(x) = v.get("initial_nodes") {
            spec.initial_nodes = req_u64(x, "initial_nodes")? as usize;
        }
        if let Some(x) = v.get("loss_pct") {
            spec.loss_pct = req_u64(x, "loss_pct")? as u32;
        }
        if let Some(x) = v.get("fail_frac") {
            spec.fail_frac = req_f64(x, "fail_frac")?;
        }
        if let Some(x) = v.get("chaos_seed") {
            spec.chaos_seed = match x {
                Json::Null => None,
                other => Some(req_u64(other, "chaos_seed")?),
            };
        }
        if let Some(x) = v.get("replicas") {
            spec.replicas = req_u64(x, "replicas")? as usize;
        }
        if let Some(x) = v.get("base_seed") {
            spec.base_seed = req_u64(x, "base_seed")?;
        }
        if let Some(x) = v.get("trace") {
            spec.trace = x
                .as_bool()
                .ok_or("scenario spec: field 'trace' must be a bool")?;
        }
        spec.validate()?;
        Ok(spec)
    }
}

fn req_str<'a>(v: &'a Json, field: &str) -> Result<&'a str, String> {
    v.as_str()
        .ok_or_else(|| format!("scenario spec: field '{field}' must be a string"))
}

fn req_u64(v: &Json, field: &str) -> Result<u64, String> {
    v.as_u64()
        .ok_or_else(|| format!("scenario spec: field '{field}' must be a non-negative integer"))
}

fn req_f64(v: &Json, field: &str) -> Result<f64, String> {
    v.as_f64()
        .ok_or_else(|| format!("scenario spec: field '{field}' must be a number"))
}

/// One concrete run of the expanded matrix.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RunSpec {
    /// Index of the cell in the matrix.
    pub cell: usize,
    /// Replica index within the cell.
    pub replica: usize,
    /// The run's seed: `replica_seed(cell.base_seed, replica)`.
    pub seed: u64,
}

/// An ordered list of scenario cells — the unit of work `decor-serve`
/// accepts and [`crate::runner::MatrixRunner`] executes.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioMatrix {
    cells: Vec<ScenarioSpec>,
}

impl ScenarioMatrix {
    /// A matrix from validated cells.
    pub fn new(cells: Vec<ScenarioSpec>) -> Result<Self, String> {
        if cells.is_empty() {
            return Err("scenario matrix: no cells".into());
        }
        for cell in &cells {
            cell.validate()?;
        }
        Ok(ScenarioMatrix { cells })
    }

    /// The cross product of schemes × ks × loss rates over a template —
    /// the paper's figure shape. Each `k` gets its own field population
    /// (`base_seed ^ k << 8`, the fig-08 mixing) while schemes at the same
    /// parameter point share fields, so curves stay comparable; the loss
    /// axis mixes higher bits.
    pub fn axes(
        template: &ScenarioSpec,
        schemes: &[SchemeKind],
        ks: &[u32],
        loss_pcts: &[u32],
    ) -> Result<Self, String> {
        let mut cells = Vec::new();
        for &k in ks {
            for &loss_pct in loss_pcts {
                for &scheme in schemes {
                    cells.push(ScenarioSpec {
                        name: format!(
                            "{}-{}-k{k}-loss{loss_pct}",
                            template.workload.spec_name(),
                            scheme.spec_name()
                        ),
                        scheme,
                        k,
                        loss_pct,
                        base_seed: template.base_seed
                            ^ ((k as u64) << 8)
                            ^ ((loss_pct as u64) << 24),
                        ..template.clone()
                    });
                }
            }
        }
        ScenarioMatrix::new(cells)
    }

    /// The cells, in matrix order.
    pub fn cells(&self) -> &[ScenarioSpec] {
        &self.cells
    }

    /// Total runs across all cells.
    pub fn n_runs(&self) -> usize {
        self.cells.iter().map(|c| c.replicas).sum()
    }

    /// Flattens into runs — cell-major, replicas in order — with the
    /// deterministic per-run seeds.
    pub fn expand(&self) -> Vec<RunSpec> {
        let mut runs = Vec::with_capacity(self.n_runs());
        for (cell, spec) in self.cells.iter().enumerate() {
            for replica in 0..spec.replicas {
                runs.push(RunSpec {
                    cell,
                    replica,
                    seed: replica_seed(spec.base_seed, replica),
                });
            }
        }
        runs
    }

    /// One spec per line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for cell in &self.cells {
            out.push_str(&cell.to_json());
            out.push('\n');
        }
        out
    }

    /// Parses [`ScenarioMatrix::to_jsonl`]; blank lines and `#` comments
    /// are ignored, errors name the offending line.
    pub fn from_jsonl(text: &str) -> Result<Self, String> {
        let mut cells = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            cells.push(
                ScenarioSpec::from_json(line).map_err(|e| format!("line {}: {e}", lineno + 1))?,
            );
        }
        ScenarioMatrix::new(cells)
    }

    /// The matrix truncated to at most `max_runs` total runs: trailing
    /// cells drop, the boundary cell keeps a reduced replica count. Used
    /// by `decor-serve gen --runs` to cap CI smoke matrices.
    pub fn capped(&self, max_runs: usize) -> Result<ScenarioMatrix, String> {
        if max_runs == 0 {
            return Err("scenario matrix: cap must be positive".into());
        }
        let mut cells = Vec::new();
        let mut left = max_runs;
        for cell in &self.cells {
            if left == 0 {
                break;
            }
            let mut cell = cell.clone();
            cell.replicas = cell.replicas.min(left);
            left -= cell.replicas;
            cells.push(cell);
        }
        ScenarioMatrix::new(cells)
    }

    /// A stable content hash of the matrix, used by checkpoint journals
    /// to refuse resuming against a different spec file.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        for b in self.to_jsonl().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }
}

/// Failure-probe metrics (the `ext_loss` detection columns).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ProbeStats {
    /// Real failures caught, percent.
    pub detection_rate_pct: f64,
    /// Alive sensors falsely declared dead.
    pub false_alarms: f64,
    /// Worst detection latency in heartbeat periods.
    pub worst_latency_periods: f64,
}

/// The typed result of one run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Cell index in the matrix.
    pub cell: usize,
    /// Replica index within the cell.
    pub replica: usize,
    /// The seed the run derived everything from.
    pub seed: u64,
    /// Fraction of approximation points k-covered at the end, percent.
    pub coverage_pct: f64,
    /// Area left below the coverage requirement, in field units²
    /// (`(1 - coverage) · field area` over the approximation).
    pub missed_area: f64,
    /// Sensors active after the run (initial + placed).
    pub total_sensors: usize,
    /// Sensors the placer consumed.
    pub placed: usize,
    /// Protocol rounds executed.
    pub rounds: usize,
    /// Transport retransmissions spent.
    pub retries: u64,
    /// Placement notices whose retry budget ran out.
    pub gave_up: u64,
    /// Did the run reach full k-coverage?
    pub fully_covered: bool,
    /// Invariant violations observed (0 unless a chaos run is attached
    /// and something actually broke).
    pub invariant_violations: usize,
    /// Detection metrics ([`Workload::FailureProbe`] only).
    pub probe: Option<ProbeStats>,
    /// Wall time of this run, nanoseconds. The only nondeterministic
    /// field — excluded from [`RunResult::fingerprint_json`].
    pub wall_ns: u64,
    /// Canonical JSONL trace when the spec asked for one.
    pub trace: Option<String>,
}

impl RunResult {
    fn to_json_value(&self, wall_ns: u64) -> Json {
        Json::Obj(vec![
            ("cell".into(), Json::UInt(self.cell as u64)),
            ("replica".into(), Json::UInt(self.replica as u64)),
            ("seed".into(), Json::UInt(self.seed)),
            ("coverage_pct".into(), num(self.coverage_pct, "coverage")),
            ("missed_area".into(), num(self.missed_area, "missed_area")),
            (
                "total_sensors".into(),
                Json::UInt(self.total_sensors as u64),
            ),
            ("placed".into(), Json::UInt(self.placed as u64)),
            ("rounds".into(), Json::UInt(self.rounds as u64)),
            ("retries".into(), Json::UInt(self.retries)),
            ("gave_up".into(), Json::UInt(self.gave_up)),
            ("fully_covered".into(), Json::Bool(self.fully_covered)),
            (
                "invariant_violations".into(),
                Json::UInt(self.invariant_violations as u64),
            ),
            (
                "probe".into(),
                match &self.probe {
                    None => Json::Null,
                    Some(p) => Json::Obj(vec![
                        (
                            "detection_rate_pct".into(),
                            num(p.detection_rate_pct, "detection_rate_pct"),
                        ),
                        ("false_alarms".into(), num(p.false_alarms, "false_alarms")),
                        (
                            "worst_latency_periods".into(),
                            num(p.worst_latency_periods, "worst_latency_periods"),
                        ),
                    ]),
                },
            ),
            ("wall_ns".into(), Json::UInt(wall_ns)),
            (
                "trace".into(),
                match &self.trace {
                    None => Json::Null,
                    Some(t) => Json::Str(t.clone()),
                },
            ),
        ])
    }

    /// Canonical single-line JSON (checkpoint journal / `decor-serve`
    /// per-run output format).
    pub fn to_json(&self) -> String {
        self.to_json_value(self.wall_ns).render()
    }

    /// [`RunResult::to_json`] rendered into a caller-owned buffer
    /// (cleared first), so per-run streaming reuses one line buffer
    /// instead of allocating a fresh string per result.
    pub fn to_json_into(&self, out: &mut String) {
        out.clear();
        self.to_json_value(self.wall_ns).render_into(out);
    }

    /// [`RunResult::to_json`] with `wall_ns` zeroed: the run's
    /// deterministic identity. Two runs of the same `RunSpec` must
    /// produce identical fingerprints whatever the scheduling.
    pub fn fingerprint_json(&self) -> String {
        self.to_json_value(0).render()
    }

    /// Parses [`RunResult::to_json`] output.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = Json::parse(text).map_err(|e| format!("run result: {e}"))?;
        let f = |field: &str| -> Result<&Json, String> {
            v.get(field)
                .ok_or_else(|| format!("run result: missing field '{field}'"))
        };
        let probe = match f("probe")? {
            Json::Null => None,
            p => Some(ProbeStats {
                detection_rate_pct: req_f64(
                    p.get("detection_rate_pct").unwrap_or(&Json::Null),
                    "detection_rate_pct",
                )?,
                false_alarms: req_f64(
                    p.get("false_alarms").unwrap_or(&Json::Null),
                    "false_alarms",
                )?,
                worst_latency_periods: req_f64(
                    p.get("worst_latency_periods").unwrap_or(&Json::Null),
                    "worst_latency_periods",
                )?,
            }),
        };
        Ok(RunResult {
            cell: req_u64(f("cell")?, "cell")? as usize,
            replica: req_u64(f("replica")?, "replica")? as usize,
            seed: req_u64(f("seed")?, "seed")?,
            coverage_pct: req_f64(f("coverage_pct")?, "coverage_pct")?,
            missed_area: req_f64(f("missed_area")?, "missed_area")?,
            total_sensors: req_u64(f("total_sensors")?, "total_sensors")? as usize,
            placed: req_u64(f("placed")?, "placed")? as usize,
            rounds: req_u64(f("rounds")?, "rounds")? as usize,
            retries: req_u64(f("retries")?, "retries")?,
            gave_up: req_u64(f("gave_up")?, "gave_up")?,
            fully_covered: f("fully_covered")?
                .as_bool()
                .ok_or("run result: field 'fully_covered' must be a bool")?,
            invariant_violations: req_u64(f("invariant_violations")?, "invariant_violations")?
                as usize,
            probe,
            wall_ns: req_u64(f("wall_ns")?, "wall_ns")?,
            trace: match f("trace")? {
                Json::Null => None,
                t => Some(req_str(t, "trace")?.to_owned()),
            },
        })
    }
}

/// The heartbeat period the failure probe uses (ticks) — `ext_loss`'s
/// constant, re-exported so both paths share it.
pub const PROBE_PERIOD: u64 = 1_000;

/// Executes one run of `spec` — the single execution path behind the
/// matrix runner and (through the refactored fig/ext modules) the paper
/// figures. Deterministic in `(spec, run)`.
pub fn execute_run(spec: &ScenarioSpec, run: &RunSpec) -> RunResult {
    execute_run_inner(spec, run, None)
}

/// [`execute_run`] against a pooled [`WorkerArena`]: the map, the benefit
/// engine, the simulated radio and the transport come from the arena
/// instead of the allocator, and go back to it when the run ends. The
/// result is bit-identical to [`execute_run`] — the `pool_reuse` proptest
/// (`crates/exp/tests/pool_reuse.rs`) pins that across interleaved
/// scenario shapes.
pub fn execute_run_in(spec: &ScenarioSpec, run: &RunSpec, arena: &mut WorkerArena) -> RunResult {
    execute_run_inner(spec, run, Some(arena))
}

fn execute_run_inner(
    spec: &ScenarioSpec,
    run: &RunSpec,
    arena: Option<&mut WorkerArena>,
) -> RunResult {
    let t0 = std::time::Instant::now();
    let mut result = match spec.workload {
        Workload::Deploy => execute_deploy(spec, run, arena),
        Workload::FailureProbe => execute_failure_probe(spec, run, arena),
    };
    result.wall_ns = t0.elapsed().as_nanos() as u64;
    result
}

/// The per-run chaos plan: seeded by `replica_seed(chaos_seed, replica)`
/// over the cell's initial population, on the CLI's horizon.
fn chaos_plan(spec: &ScenarioSpec, run: &RunSpec) -> Option<FaultPlan> {
    spec.chaos_seed.map(|chaos| {
        FaultPlan::generate(replica_seed(chaos, run.replica), spec.initial_nodes, 1_000)
    })
}

fn customize(spec: &ScenarioSpec, run: &RunSpec) -> impl FnOnce(&mut DeploymentConfig) {
    let chaos = chaos_plan(spec, run);
    let trace = spec.trace;
    move |cfg: &mut DeploymentConfig| {
        if trace {
            cfg.trace = decor_trace::TraceHandle::jsonl_writer();
        }
        if chaos.is_some() {
            cfg.invariants = InvariantChecker::enabled();
            cfg.chaos = chaos;
        }
    }
}

fn execute_deploy(
    spec: &ScenarioSpec,
    run: &RunSpec,
    arena: Option<&mut WorkerArena>,
) -> RunResult {
    let params = spec.params();
    let (coverage, out, cfg) = match arena {
        Some(arena) => {
            let (map, out, cfg) = deploy_with_in(
                &params,
                spec.scheme,
                spec.k,
                run.seed,
                customize(spec, run),
                arena,
            );
            let coverage = map.fraction_k_covered(cfg.k);
            arena.recycle(map);
            (coverage, out, cfg)
        }
        None => {
            let (map, out, cfg) =
                deploy_with(&params, spec.scheme, spec.k, run.seed, customize(spec, run));
            (map.fraction_k_covered(cfg.k), out, cfg)
        }
    };
    RunResult {
        cell: run.cell,
        replica: run.replica,
        seed: run.seed,
        coverage_pct: coverage * 100.0,
        missed_area: (1.0 - coverage) * params.field().area(),
        total_sensors: out.total_sensors(),
        placed: out.placed.len(),
        rounds: out.rounds,
        retries: out.messages.retries,
        gave_up: out.messages.notices_gave_up,
        fully_covered: out.fully_covered,
        invariant_violations: cfg.invariants.violations().len(),
        probe: None,
        wall_ns: 0,
        trace: cfg.trace.jsonl(),
    }
}

/// The `ext_loss` closure, verbatim: centralized deploy, fractional
/// failure, heartbeat detection over the lossy medium, restoration with
/// the spec's scheme over the same medium. Seed mixing (`^ 0xF0`,
/// `^ 0x0F`, `^ 0xBEA7`, `^ 0x7A`) matches the legacy module exactly —
/// the differential tier depends on it.
fn execute_failure_probe(
    spec: &ScenarioSpec,
    run: &RunSpec,
    mut arena: Option<&mut WorkerArena>,
) -> RunResult {
    let params = spec.params();
    let loss = spec.loss_pct;
    let seed = run.seed;
    let (mut map, _, mut cfg) = match arena.as_deref_mut() {
        Some(arena) => deploy_with_in(
            &params,
            SchemeKind::Centralized,
            spec.k,
            seed,
            customize(spec, run),
            arena,
        ),
        None => deploy_with(
            &params,
            SchemeKind::Centralized,
            spec.k,
            seed,
            customize(spec, run),
        ),
    };
    let sensors = map.active_sensors();
    // The probe borrows the arena's pooled radio before the restore
    // placer needs it, and returns it below — `Network::reset` makes the
    // reused instance indistinguishable from a fresh one.
    let mut net = match arena.as_deref_mut().and_then(|a| a.scratch.net.take()) {
        Some(mut pooled) => {
            pooled.reset(*map.field());
            pooled
        }
        None => Network::new(*map.field()),
    };
    for &(_, pos) in &sensors {
        net.add_node(pos, cfg.rs, cfg.rc);
    }
    net.set_loss(loss as f64 / 100.0, seed ^ 0xF0);
    let victims = FailurePlan::Fraction {
        frac: spec.fail_frac,
        seed: seed ^ 0x0F,
    }
    .victims(&net);
    let sim = HeartbeatSim::new(HeartbeatConfig {
        period: PROBE_PERIOD,
        timeout_periods: 3,
        seed: seed ^ 0xBEA7,
    });
    let fail_at = 4 * PROBE_PERIOD;
    let report = sim.run(&mut net, &victims, fail_at, fail_at + 30 * PROBE_PERIOD);
    let rate = if victims.is_empty() {
        1.0
    } else {
        report.first_detection.len() as f64 / victims.len() as f64
    };
    let latency = report
        .max_latency(fail_at)
        .map(|l| l as f64 / PROBE_PERIOD as f64)
        .unwrap_or(0.0);
    for &v in &victims {
        map.deactivate_sensor(sensors[v].0);
    }
    if loss > 0 {
        cfg.link = LinkConfig::lossy(loss as f64 / 100.0, seed ^ 0x7A);
    }
    let placer = params.placer(spec.scheme, seed ^ 0x9E37);
    let restore = match arena.as_deref_mut() {
        Some(arena) => {
            // Hand the probe radio back first so the restore placer
            // reuses it instead of building a fresh network.
            arena.scratch.net = Some(net);
            placer.place_in(&mut map, &cfg, &mut arena.scratch)
        }
        None => placer.place(&mut map, &cfg),
    };
    let coverage = map.fraction_k_covered(cfg.k);
    if let Some(arena) = arena {
        arena.recycle(map);
    }
    RunResult {
        cell: run.cell,
        replica: run.replica,
        seed,
        coverage_pct: coverage * 100.0,
        missed_area: (1.0 - coverage) * params.field().area(),
        total_sensors: restore.total_sensors(),
        placed: restore.placed.len(),
        rounds: restore.rounds,
        retries: restore.messages.retries,
        gave_up: restore.messages.notices_gave_up,
        fully_covered: restore.fully_covered,
        invariant_violations: cfg.invariants.violations().len(),
        probe: Some(ProbeStats {
            detection_rate_pct: rate * 100.0,
            false_alarms: report.false_positives.len() as f64,
            worst_latency_periods: latency,
        }),
        wall_ns: 0,
        trace: cfg.trace.jsonl(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_spec() -> ScenarioSpec {
        let p = ExpParams::quick();
        ScenarioSpec {
            name: "quick".into(),
            ..ScenarioSpec::from_params(&p, SchemeKind::Centralized, 1)
        }
    }

    #[test]
    fn spec_json_roundtrips() {
        let mut spec = quick_spec();
        spec.chaos_seed = Some(0xFFFF_FFFF_FFFF_FFFF);
        spec.trace = true;
        spec.workload = Workload::FailureProbe;
        let back = ScenarioSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn missing_fields_take_defaults() {
        let spec = ScenarioSpec::from_json(r#"{"scheme":"grid-big"}"#).unwrap();
        assert_eq!(spec.scheme, SchemeKind::GridBig);
        let defaults = ScenarioSpec::default();
        assert_eq!(spec.k, defaults.k);
        assert_eq!(spec.n_points, defaults.n_points);
        assert_eq!(spec.base_seed, defaults.base_seed);
        assert_eq!(spec.workload, Workload::Deploy);
    }

    #[test]
    fn unknown_fields_are_ignored() {
        let spec =
            ScenarioSpec::from_json(r#"{"scheme":"random","future_knob":42,"k":2}"#).unwrap();
        assert_eq!(spec.scheme, SchemeKind::Random);
        assert_eq!(spec.k, 2);
    }

    #[test]
    fn malformed_specs_error_without_panicking() {
        for (bad, needle) in [
            (r#"{"k":1}"#, "missing required field 'scheme'"),
            (r#"{"scheme":"quantum"}"#, "unknown scheme"),
            (
                r#"{"scheme":"random","workload":"dance"}"#,
                "unknown workload",
            ),
            (r#"{"scheme":"random","k":0}"#, "k must be at least 1"),
            (r#"{"scheme":"random","loss_pct":100}"#, "loss_pct"),
            (r#"{"scheme":"random","replicas":0}"#, "replicas"),
            (r#"{"scheme":"random","fail_frac":1.5}"#, "fail_frac"),
            (r#"{"scheme":"random","k":"three"}"#, "field 'k'"),
            (r#"not json"#, "scenario spec"),
            (r#"[1,2]"#, "expected a JSON object"),
        ] {
            let err = ScenarioSpec::from_json(bad).unwrap_err();
            assert!(err.contains(needle), "{bad} -> {err}");
        }
    }

    #[test]
    fn matrix_expansion_uses_replica_seed_mixing() {
        let mut a = quick_spec();
        a.replicas = 3;
        let mut b = quick_spec();
        b.scheme = SchemeKind::Random;
        b.replicas = 2;
        b.base_seed = 99;
        let m = ScenarioMatrix::new(vec![a, b]).unwrap();
        assert_eq!(m.n_runs(), 5);
        let runs = m.expand();
        assert_eq!(runs.len(), 5);
        for (i, r) in runs[..3].iter().enumerate() {
            assert_eq!((r.cell, r.replica), (0, i));
            assert_eq!(r.seed, replica_seed(ExpParams::quick().base_seed, i));
        }
        assert_eq!(runs[3].seed, replica_seed(99, 0));
        assert_eq!(runs[4].seed, replica_seed(99, 1));
    }

    #[test]
    fn matrix_jsonl_roundtrips_and_fingerprints() {
        let m = ScenarioMatrix::axes(
            &quick_spec(),
            &[SchemeKind::Centralized, SchemeKind::Random],
            &[1, 2],
            &[0, 20],
        )
        .unwrap();
        assert_eq!(m.cells().len(), 8);
        let text = format!("# a comment\n\n{}", m.to_jsonl());
        let back = ScenarioMatrix::from_jsonl(&text).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.fingerprint(), m.fingerprint());
        let mut other = m.clone();
        other.cells[0].k = 5;
        assert_ne!(
            ScenarioMatrix::new(other.cells).unwrap().fingerprint(),
            m.fingerprint()
        );
        assert!(ScenarioMatrix::from_jsonl("\n# only comments\n").is_err());
        let err = ScenarioMatrix::from_jsonl("{\"scheme\":\"bogus\"}\n").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
    }

    #[test]
    fn capped_matrix_trims_runs_exactly() {
        let m = ScenarioMatrix::axes(
            &quick_spec(),
            &[SchemeKind::Centralized, SchemeKind::Random],
            &[1, 2],
            &[0],
        )
        .unwrap();
        assert_eq!(m.n_runs(), 8, "2 replicas x 4 cells");
        let capped = m.capped(5).unwrap();
        assert_eq!(capped.n_runs(), 5);
        assert_eq!(capped.cells().len(), 3, "boundary cell keeps 1 replica");
        assert_eq!(capped.cells()[2].replicas, 1);
        assert_eq!(m.capped(100).unwrap(), m, "a loose cap changes nothing");
        assert!(m.capped(0).is_err());
    }

    #[test]
    fn axes_k_mixing_matches_fig08() {
        let template = quick_spec();
        let m = ScenarioMatrix::axes(&template, &[SchemeKind::Centralized], &[2], &[0]).unwrap();
        assert_eq!(
            m.cells()[0].base_seed,
            template.base_seed ^ (2u64) << 8,
            "the k axis must reuse the fig-08 seed mixing"
        );
    }

    #[test]
    fn run_result_json_roundtrips() {
        let r = RunResult {
            cell: 3,
            replica: 1,
            seed: u64::MAX,
            coverage_pct: 99.7512,
            missed_area: 24.875,
            total_sensors: 210,
            placed: 10,
            rounds: 4,
            retries: 17,
            gave_up: 1,
            fully_covered: false,
            invariant_violations: 0,
            probe: Some(ProbeStats {
                detection_rate_pct: 100.0,
                false_alarms: 2.0,
                worst_latency_periods: 3.5,
            }),
            wall_ns: 123_456,
            trace: Some("{\"seq\":0}\n{\"seq\":1}\n".into()),
        };
        let back = RunResult::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
        // The fingerprint ignores wall time but nothing else.
        let mut later = r.clone();
        later.wall_ns = 999;
        assert_eq!(later.fingerprint_json(), r.fingerprint_json());
        later.retries = 18;
        assert_ne!(later.fingerprint_json(), r.fingerprint_json());
        assert!(RunResult::from_json("{}").is_err());
    }

    #[test]
    fn deploy_run_matches_common_deploy() {
        let spec = quick_spec();
        let m = ScenarioMatrix::new(vec![spec.clone()]).unwrap();
        let run = m.expand()[0];
        let result = execute_run(&spec, &run);
        let (map, out, cfg) = crate::common::deploy(&spec.params(), spec.scheme, spec.k, run.seed);
        assert_eq!(result.total_sensors, out.total_sensors());
        assert_eq!(result.placed, out.placed.len());
        assert_eq!(result.fully_covered, out.fully_covered);
        assert_eq!(
            result.coverage_pct,
            map.fraction_k_covered(cfg.k) * 100.0,
            "bitwise, not approximately"
        );
        assert!(result.wall_ns > 0, "wall time is measured");
        assert!(result.trace.is_none());
        assert!(result.probe.is_none());
    }

    #[test]
    fn traced_run_changes_nothing_but_the_trace() {
        let mut spec = quick_spec();
        let run = ScenarioMatrix::new(vec![spec.clone()]).unwrap().expand()[0];
        let plain = execute_run(&spec, &run);
        spec.trace = true;
        let traced = execute_run(&spec, &run);
        assert!(traced.trace.is_some());
        let mut stripped = traced.clone();
        stripped.trace = None;
        assert_eq!(stripped.fingerprint_json(), plain.fingerprint_json());
    }

    #[test]
    fn failure_probe_reports_detection_and_restores() {
        let mut spec = quick_spec();
        spec.workload = Workload::FailureProbe;
        spec.scheme = SchemeKind::VoronoiSmall;
        spec.k = 2;
        spec.loss_pct = 20;
        let run = ScenarioMatrix::new(vec![spec.clone()]).unwrap().expand()[0];
        let r = execute_run(&spec, &run);
        let probe = r.probe.expect("probe stats present");
        assert!(probe.detection_rate_pct > 85.0, "{probe:?}");
        assert_eq!(r.coverage_pct, 100.0, "restoration must recover coverage");
        assert!(r.retries > 0, "20% loss must cost retries");
    }

    #[test]
    fn chaos_seed_attaches_a_plan_and_the_checker() {
        let mut spec = quick_spec();
        spec.scheme = SchemeKind::GridSmall;
        spec.chaos_seed = Some(7);
        let run = ScenarioMatrix::new(vec![spec.clone()]).unwrap().expand()[0];
        let r = execute_run(&spec, &run);
        assert_eq!(r.invariant_violations, 0, "chaos must not break invariants");
        // Replicas get distinct plans.
        assert_ne!(
            chaos_plan(
                &spec,
                &RunSpec {
                    cell: 0,
                    replica: 0,
                    seed: 0
                }
            ),
            chaos_plan(
                &spec,
                &RunSpec {
                    cell: 0,
                    replica: 1,
                    seed: 0
                }
            ),
        );
    }
}
