//! Minimal SVG rendering of fields, deployments and paths.
//!
//! The paper's Figs. 4–6 are pictures; the ASCII renders in
//! [`crate::ascii_plot`] work in a terminal, and this module produces
//! publication-style SVGs (hand-assembled strings — no dependencies).
//! `decor-figures` writes them next to the CSVs.

use decor_geom::{Aabb, Point};

/// Styling for one point layer.
#[derive(Clone, Debug)]
pub struct Layer<'a> {
    /// Points to draw (field coordinates).
    pub points: &'a [Point],
    /// Circle radius in field units.
    pub radius: f64,
    /// Fill color (any SVG color string).
    pub fill: &'a str,
    /// Fill opacity 0..1.
    pub opacity: f64,
}

/// Renders layered point sets over a field into a standalone SVG string.
///
/// The viewport maps the field to `size × size` pixels with a small
/// margin; the y-axis is flipped so larger `y` is up, matching the math
/// convention of the rest of the workspace.
pub fn render_svg(field: &Aabb, layers: &[Layer<'_>], size: u32) -> String {
    assert!(size >= 64, "svg size too small to be useful");
    let margin = size as f64 * 0.04;
    let span = size as f64 - 2.0 * margin;
    let sx = span / field.width();
    let sy = span / field.height();
    let map_x = |x: f64| margin + (x - field.min.x) * sx;
    let map_y = |y: f64| margin + (field.max.y - y) * sy;
    let mut s = String::with_capacity(4096);
    s.push_str(&format!(
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{size}" height="{size}" viewBox="0 0 {size} {size}">"#
    ));
    s.push('\n');
    s.push_str(&format!(
        r#"<rect x="{m}" y="{m}" width="{w}" height="{h}" fill="white" stroke="black" stroke-width="1"/>"#,
        m = margin,
        w = span,
        h = span
    ));
    s.push('\n');
    for layer in layers {
        let r = (layer.radius * sx).max(0.5);
        for p in layer.points {
            s.push_str(&format!(
                r#"<circle cx="{:.2}" cy="{:.2}" r="{:.2}" fill="{}" fill-opacity="{}"/>"#,
                map_x(p.x),
                map_y(p.y),
                r,
                layer.fill,
                layer.opacity
            ));
            s.push('\n');
        }
    }
    s.push_str("</svg>\n");
    s
}

/// Renders a polyline path (e.g. a breach path) over a base render by
/// inserting it before the closing tag.
pub fn with_path(svg: &str, field: &Aabb, waypoints: &[Point], stroke: &str, size: u32) -> String {
    if waypoints.is_empty() {
        return svg.to_owned();
    }
    let margin = size as f64 * 0.04;
    let span = size as f64 - 2.0 * margin;
    let sx = span / field.width();
    let sy = span / field.height();
    let pts: Vec<String> = waypoints
        .iter()
        .map(|p| {
            format!(
                "{:.2},{:.2}",
                margin + (p.x - field.min.x) * sx,
                margin + (field.max.y - p.y) * sy
            )
        })
        .collect();
    let poly = format!(
        r#"<polyline points="{}" fill="none" stroke="{}" stroke-width="2"/>"#,
        pts.join(" "),
        stroke
    );
    svg.replace("</svg>", &format!("{poly}\n</svg>"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field() -> Aabb {
        Aabb::square(100.0)
    }

    #[test]
    fn svg_structure_is_well_formed() {
        let pts = vec![Point::new(10.0, 10.0), Point::new(90.0, 90.0)];
        let svg = render_svg(
            &field(),
            &[Layer {
                points: &pts,
                radius: 4.0,
                fill: "steelblue",
                opacity: 0.4,
            }],
            512,
        );
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<circle").count(), 2);
        assert_eq!(svg.matches("<rect").count(), 1);
    }

    #[test]
    fn y_axis_is_flipped() {
        // A point with a large y must render with a small cy.
        let hi = vec![Point::new(50.0, 95.0)];
        let lo = vec![Point::new(50.0, 5.0)];
        let layer = |pts: &'static [Point]| Layer {
            points: pts,
            radius: 1.0,
            fill: "red",
            opacity: 1.0,
        };
        let hi_pts: &'static [Point] = Box::leak(hi.into_boxed_slice());
        let lo_pts: &'static [Point] = Box::leak(lo.into_boxed_slice());
        let svg_hi = render_svg(&field(), &[layer(hi_pts)], 512);
        let svg_lo = render_svg(&field(), &[layer(lo_pts)], 512);
        let cy = |s: &str| -> f64 {
            let i = s.find("cy=\"").unwrap() + 4;
            s[i..].split('"').next().unwrap().parse().unwrap()
        };
        assert!(cy(&svg_hi) < cy(&svg_lo));
    }

    #[test]
    fn multiple_layers_stack_in_order() {
        let a = vec![Point::new(50.0, 50.0)];
        let b = vec![Point::new(60.0, 60.0)];
        let svg = render_svg(
            &field(),
            &[
                Layer {
                    points: &a,
                    radius: 4.0,
                    fill: "blue",
                    opacity: 0.3,
                },
                Layer {
                    points: &b,
                    radius: 2.0,
                    fill: "red",
                    opacity: 1.0,
                },
            ],
            256,
        );
        let blue = svg.find("blue").unwrap();
        let red = svg.find("red").unwrap();
        assert!(blue < red, "later layers render on top");
    }

    #[test]
    fn path_overlay_inserts_polyline() {
        let svg = render_svg(&field(), &[], 256);
        let path = vec![Point::new(0.0, 50.0), Point::new(100.0, 50.0)];
        let with = with_path(&svg, &field(), &path, "crimson", 256);
        assert!(with.contains("<polyline"));
        assert!(with.trim_end().ends_with("</svg>"));
        assert_eq!(with_path(&svg, &field(), &[], "crimson", 256), svg);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_canvas_panics() {
        let _ = render_svg(&field(), &[], 16);
    }
}
