//! Figure 12 — "Maximum allowed failures for 1-coverage of 90% of the
//! area."
//!
//! For each k and scheme: deploy for k, then find the largest random
//! failure fraction that still leaves at least 90% of the points
//! 1-covered. Expected shape: tolerance grows steeply with k (the paper
//! reports up to 75%); for k ≥ 2 even 30% failures keep 90% 1-coverage.

use crate::common::{deploy, ExpParams};
use crate::stats::mean;
use crate::table::Table;
use decor_core::parallel::run_replicas;
use decor_core::restore::coverage_after_failure;
use decor_core::SchemeKind;
use decor_net::FailurePlan;

/// The k values swept (paper: 1..=5).
pub const KS: [u32; 5] = [1, 2, 3, 4, 5];

/// Coverage target: 90% of points 1-covered.
pub const TARGET: f64 = 0.90;

/// Failure-fraction granularity of the search (percentage points).
pub const STEP_PCT: u32 = 5;

/// Largest failure percentage (stepped by [`STEP_PCT`]) keeping at least
/// `TARGET` of the points 1-covered, for a concrete deployed map.
pub fn max_tolerated_pct(
    map: &decor_core::CoverageMap,
    cfg: &decor_core::DeploymentConfig,
    fail_seed: u64,
) -> u32 {
    let mut best = 0;
    let mut pct = STEP_PCT;
    while pct <= 95 {
        let mut m = map.clone();
        let plan = FailurePlan::Fraction {
            frac: pct as f64 / 100.0,
            seed: fail_seed ^ pct as u64,
        };
        let cov = coverage_after_failure(&mut m, cfg, &plan, 1);
        if cov >= TARGET {
            best = pct;
            pct += STEP_PCT;
        } else {
            break;
        }
    }
    best
}

/// Runs the experiment. Columns: k, then maximum tolerated failure % per
/// scheme.
pub fn run(params: &ExpParams) -> Table {
    let mut columns = vec!["k".to_owned()];
    columns.extend(SchemeKind::ALL.iter().map(|s| s.label().to_owned()));
    let mut t = Table::new(
        "fig12",
        "Maximum failure % preserving 1-coverage of 90% of the area",
        columns,
    );
    for &k in &KS {
        let mut row = vec![k as f64];
        for &scheme in &SchemeKind::ALL {
            let tolerated = run_replicas(params.seeds, params.base_seed ^ 0x12, |i, seed| {
                let (map, _, cfg) = deploy(params, scheme, k, seed);
                max_tolerated_pct(&map, &cfg, seed ^ (i as u64) << 40) as f64
            });
            row.push(mean(&tolerated));
        }
        t.push_row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tolerance_grows_with_k() {
        let params = ExpParams::quick();
        let tolerance = |k: u32| {
            let v = run_replicas(params.seeds, params.base_seed, |_, seed| {
                let (map, _, cfg) = deploy(&params, SchemeKind::Centralized, k, seed);
                max_tolerated_pct(&map, &cfg, seed ^ 0xF) as f64
            });
            mean(&v)
        };
        let t1 = tolerance(1);
        let t3 = tolerance(3);
        assert!(t3 > t1, "k=3 tolerance {t3} must exceed k=1 tolerance {t1}");
        assert!(
            t3 >= 30.0,
            "k=3 must survive 30% failures (paper), got {t3}"
        );
    }

    #[test]
    fn search_is_monotone_in_its_inputs() {
        // A fully over-provisioned map tolerates massive failure rates.
        let params = ExpParams::quick();
        let cfg = decor_core::DeploymentConfig::with_k(1);
        let mut map = params.make_map(&cfg, 0, 1);
        for _ in 0..6 {
            // Six independent blankets of total coverage.
            for i in 0..13 {
                for j in 0..13 {
                    map.add_sensor(
                        decor_geom::Point::new(4.0 + 7.7 * i as f64, 4.0 + 7.7 * j as f64),
                        6.0,
                    );
                }
            }
        }
        let tol = max_tolerated_pct(&map, &cfg, 9);
        assert!(tol >= 50, "6x blanket should survive >=50%, got {tol}");
    }
}
