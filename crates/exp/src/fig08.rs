//! Figure 8 — "Number of nodes needed for k-coverage of the area vs. k."
//!
//! Expected shape (paper, k = 4): centralized 788, Voronoi big-rc ~13%
//! above it (891), grid small-cell worst among DECOR (1196), random ~4×.
//! All series grow roughly linearly in k (each unit of k needs another
//! layer of disk coverage).

use crate::common::ExpParams;
use crate::runner::{aggregate, MatrixRunner};
use crate::scenario::{ScenarioMatrix, ScenarioSpec};
use crate::table::Table;
use decor_core::SchemeKind;

/// The k values swept (paper: 1..=5).
pub const KS: [u32; 5] = [1, 2, 3, 4, 5];

/// The figure as a scenario matrix: one cell per (k, scheme), each k
/// sweeping the same field population (`base_seed ^ k << 8`, the mixing
/// this module has always used). `tests/matrix_differential.rs` pins the
/// matrix path against the raw sequential loop.
pub fn matrix(params: &ExpParams) -> ScenarioMatrix {
    let mut cells = Vec::new();
    for &k in &KS {
        for &scheme in &SchemeKind::ALL {
            let mut spec = ScenarioSpec::from_params(params, scheme, k);
            spec.name = format!("fig08-{}-k{k}", scheme.spec_name());
            spec.base_seed = params.base_seed ^ (k as u64) << 8;
            cells.push(spec);
        }
    }
    ScenarioMatrix::new(cells).expect("fig08 matrix is valid")
}

/// Runs the experiment. Columns: k, then total nodes per scheme.
pub fn run(params: &ExpParams) -> Table {
    let mut columns = vec!["k".to_owned()];
    columns.extend(SchemeKind::ALL.iter().map(|s| s.label().to_owned()));
    let mut t = Table::new("fig08", "Nodes needed for 100% k-coverage vs k", columns);
    let m = matrix(params);
    let summaries = aggregate(&m, &MatrixRunner::auto().run(&m));
    for (ki, &k) in KS.iter().enumerate() {
        let mut row = vec![k as f64];
        for (si, _) in SchemeKind::ALL.iter().enumerate() {
            let s = &summaries[ki * SchemeKind::ALL.len() + si];
            assert!(s.all_fully_covered, "{} failed to cover at k={k}", s.name);
            row.push(s.mean_total_sensors);
        }
        t.push_row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::deploy;
    use crate::stats::mean;
    use decor_core::parallel::run_replicas;

    /// A scaled-down sweep: k in {1, 2} under quick params to keep test
    /// time sane; asserts the orderings the paper reports.
    #[test]
    fn orderings_match_paper_shape() {
        let params = ExpParams::quick();
        let mut columns = vec!["k".to_owned()];
        columns.extend(SchemeKind::ALL.iter().map(|s| s.label().to_owned()));
        let mut rows = Vec::new();
        for k in [1u32, 2] {
            let mut row = vec![k as f64];
            for &scheme in &SchemeKind::ALL {
                let totals = run_replicas(params.seeds, params.base_seed, |_, seed| {
                    let (_, out, _) = deploy(&params, scheme, k, seed);
                    out.total_sensors() as f64
                });
                row.push(mean(&totals));
            }
            rows.push(row);
        }
        let col = |name: &str| -> usize {
            1 + SchemeKind::ALL
                .iter()
                .position(|s| s.label() == name)
                .unwrap()
        };
        for row in &rows {
            let central = row[col("Centralized")];
            let random = row[col("Random")];
            let vbig = row[col("Voronoi (big rc)")];
            let gsmall = row[col("Grid (small cell)")];
            assert!(central <= vbig + 1e-9, "centralized must be best: {row:?}");
            assert!(random > 1.8 * central, "random must be far worse: {row:?}");
            assert!(gsmall >= central, "grid small >= centralized: {row:?}");
        }
        // Node demand grows with k for every scheme.
        for (c, (r1, r0)) in rows[1].iter().zip(&rows[0]).enumerate().skip(1) {
            assert!(r1 > r0, "column {c} must grow with k");
        }
    }

    /// The exact-geometry hole healer on the same Fig. 8 scenario: it is
    /// not one of the paper's six curves, but it must clear the same bar
    /// (full k-coverage at every k, every seed) and stay competitive —
    /// well under the random baseline, in the same band as the DECOR
    /// schemes.
    #[test]
    fn holes_scheme_covers_the_fig08_scenario() {
        let params = ExpParams::quick();
        let mut prev = 0.0;
        for k in [1u32, 2] {
            let count = |scheme: SchemeKind| {
                mean(&run_replicas(params.seeds, params.base_seed, |_, seed| {
                    let (map, out, cfg) = deploy(&params, scheme, k, seed);
                    assert!(
                        out.fully_covered,
                        "{} failed to cover at k={k}",
                        scheme.label()
                    );
                    assert_eq!(map.count_below(cfg.k), 0, "{}", scheme.label());
                    out.total_sensors() as f64
                }))
            };
            let holes = count(SchemeKind::Holes);
            let central = count(SchemeKind::Centralized);
            let random = count(SchemeKind::Random);
            assert!(
                holes < random,
                "k={k}: holes ({holes}) must beat random ({random})"
            );
            assert!(
                holes <= 2.0 * central,
                "k={k}: holes ({holes}) must stay near centralized ({central})"
            );
            assert!(holes > prev, "node demand must grow with k");
            prev = holes;
        }
    }
}
