//! Figure 9 — "Percentage of redundant nodes vs. k."
//!
//! A node is redundant when removing it keeps the area k-covered.
//! Expected shape: centralized ≈ 0 (global greedy never wastes), the
//! informed DECOR variants (Voronoi big rc) low, Voronoi small rc higher
//! (blind annulus), random catastrophic (the paper reports 1500–3000
//! redundant *nodes*). Note the paper's §4.1 text is internally
//! inconsistent about the grid ordering (it claims both that redundancy
//! grows with cell size and that the big cell places "few or no redundant
//! nodes"); EXPERIMENTS.md records which reading our mechanism matches.

use crate::common::{deploy, ExpParams};
use crate::stats::mean;
use crate::table::Table;
use decor_core::parallel::run_replicas;
use decor_core::redundancy::redundancy_stats;
use decor_core::SchemeKind;

/// The k values swept (paper: 1..=5).
pub const KS: [u32; 5] = [1, 2, 3, 4, 5];

/// Runs the experiment. Columns: k, then redundant-node percentage per
/// scheme.
pub fn run(params: &ExpParams) -> Table {
    let mut columns = vec!["k".to_owned()];
    columns.extend(SchemeKind::ALL.iter().map(|s| s.label().to_owned()));
    let mut t = Table::new("fig09", "Percentage of redundant nodes vs k", columns);
    for &k in &KS {
        let mut row = vec![k as f64];
        for &scheme in &SchemeKind::ALL {
            let fracs = run_replicas(
                params.seeds,
                params.base_seed ^ (k as u64) << 16,
                |_, seed| {
                    let (mut map, _, cfg) = deploy(params, scheme, k, seed);
                    redundancy_stats(&mut map, cfg.k).1 * 100.0
                },
            );
            row.push(mean(&fracs));
        }
        t.push_row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn redundancy_orderings_match_paper_shape() {
        let params = ExpParams::quick();
        let k = 2;
        let frac_of = |scheme: SchemeKind| {
            let fracs = run_replicas(params.seeds, params.base_seed, |_, seed| {
                let (mut map, _, cfg) = deploy(&params, scheme, k, seed);
                redundancy_stats(&mut map, cfg.k).1 * 100.0
            });
            mean(&fracs)
        };
        let central = frac_of(SchemeKind::Centralized);
        let random = frac_of(SchemeKind::Random);
        let vbig = frac_of(SchemeKind::VoronoiBig);
        let vsmall = frac_of(SchemeKind::VoronoiSmall);
        assert!(central < 10.0, "centralized wastes little, got {central}%");
        assert!(
            random > 4.0 * central.max(2.0),
            "random ({random}%) must dwarf centralized ({central}%)"
        );
        assert!(
            vbig <= vsmall + 3.0,
            "big rc ({vbig}%) should not waste more than small rc ({vsmall}%)"
        );
    }
}
