//! Extension — failure detection under packet loss.
//!
//! §2.1 concedes that "sensors are also susceptible to packet loss and
//! link failures" but the paper never quantifies what loss does to its
//! heartbeat failure detector (§3.2). This experiment does: deploy a
//! k = 2 field, fail 10% of the sensors, run the detector over media with
//! increasing packet-loss rates, and measure
//!
//! - the **detection rate** (real failures caught),
//! - the **false-alarm count** (alive sensors suspected after
//!   `timeout_periods` consecutive losses),
//! - the **worst detection latency** in heartbeat periods.
//!
//! Expected: detection stays near-perfect (a dead node is silent forever,
//! a lossy link only delays the verdict), latency creeps up, and false
//! alarms grow roughly like `n · loss^timeout` — the knob a deployment
//! tunes with `timeout_periods`.
//!
//! The sweep then *restores* the failed field with the Voronoi scheme over
//! the same lossy medium: placement notices ride the reliable transport
//! (acks, bounded retries), so the restored coverage should stay at 100%
//! while the retry traffic grows with the loss rate — the cost curve of
//! reliability.

use crate::common::ExpParams;
use crate::runner::{aggregate, MatrixRunner};
use crate::scenario::{ScenarioMatrix, ScenarioSpec, Workload, PROBE_PERIOD};
use crate::table::Table;
use decor_core::SchemeKind;

/// Loss rates swept (percent).
pub const LOSS_PCTS: [u32; 5] = [0, 10, 20, 30, 40];

/// Heartbeat period used (ticks).
pub const PERIOD: u64 = PROBE_PERIOD;

/// The sweep as a scenario matrix: one failure-probe cell per loss rate,
/// restoring with the small-rc Voronoi scheme over the lossy medium. The
/// probe execution lives in [`crate::scenario::execute_run`];
/// `tests/matrix_differential.rs` pins it against the legacy inline loop.
pub fn matrix(params: &ExpParams) -> ScenarioMatrix {
    let cells = LOSS_PCTS
        .iter()
        .map(|&loss| {
            let mut spec = ScenarioSpec::from_params(params, SchemeKind::VoronoiSmall, 2);
            spec.name = format!("ext-loss-{loss}");
            spec.workload = Workload::FailureProbe;
            spec.loss_pct = loss;
            spec.fail_frac = 0.1;
            spec.base_seed = params.base_seed ^ 0x1055;
            spec
        })
        .collect();
    ScenarioMatrix::new(cells).expect("ext_loss matrix is valid")
}

/// Runs the experiment. Columns: loss %, detection rate %, false alarms,
/// worst latency in periods, restored coverage %, transport retries spent
/// restoring, notices that exhausted their retry budget.
pub fn run(params: &ExpParams) -> Table {
    let mut t = Table::new(
        "ext_loss",
        "Heartbeat failure detection under packet loss (k=2 field, 10% node failures)",
        vec![
            "loss_pct".into(),
            "detection_rate_pct".into(),
            "false_alarms".into(),
            "worst_latency_periods".into(),
            "restore_coverage_pct".into(),
            "restore_retries".into(),
            "restore_gave_up".into(),
        ],
    );
    let m = matrix(params);
    let summaries = aggregate(&m, &MatrixRunner::auto().run(&m));
    for (s, &loss) in summaries.iter().zip(&LOSS_PCTS) {
        let probe = |v: Option<f64>| v.expect("probe cells always carry detection stats");
        t.push_row(vec![
            loss as f64,
            probe(s.mean_detection_rate_pct),
            probe(s.mean_false_alarms),
            probe(s.mean_worst_latency_periods),
            s.mean_coverage_pct,
            s.mean_retries,
            s.mean_gave_up,
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_costs_false_alarms_not_detections() {
        let params = ExpParams::quick();
        let t = run(&params);
        let clean = &t.rows[0];
        let lossy = t.rows.last().unwrap();
        // Loss-free: no false alarms, high detection.
        assert_eq!(clean[2], 0.0, "no false alarms without loss: {t:?}");
        assert!(clean[1] > 90.0, "detection rate {:?}", clean[1]);
        // 40% loss: detection holds up, false alarms appear.
        assert!(
            lossy[1] > 85.0,
            "detection must survive loss: {:?}",
            lossy[1]
        );
        assert!(
            lossy[2] > clean[2],
            "false alarms must grow with loss: {t:?}"
        );
        // Latency roughly non-decreasing from clean to lossy (high loss
        // adds false positives whose early verdicts can shave the worst
        // real-victim latency, hence the slack).
        assert!(lossy[3] >= clean[3] - 0.75, "latency shape: {t:?}");
        // Restoration reaches full k-coverage at every loss rate — that is
        // the transport's whole job.
        for row in &t.rows {
            assert_eq!(row[4], 100.0, "restored coverage at loss {}: {t:?}", row[0]);
        }
        // Retry traffic is the price: zero without loss, growing with it.
        assert_eq!(clean[5], 0.0, "no retries without loss: {t:?}");
        assert!(
            lossy[5] > t.rows[1][5],
            "retries must grow with loss: {t:?}"
        );
    }
}
