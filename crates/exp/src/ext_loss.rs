//! Extension — failure detection under packet loss.
//!
//! §2.1 concedes that "sensors are also susceptible to packet loss and
//! link failures" but the paper never quantifies what loss does to its
//! heartbeat failure detector (§3.2). This experiment does: deploy a
//! k = 2 field, fail 10% of the sensors, run the detector over media with
//! increasing packet-loss rates, and measure
//!
//! - the **detection rate** (real failures caught),
//! - the **false-alarm count** (alive sensors suspected after
//!   `timeout_periods` consecutive losses),
//! - the **worst detection latency** in heartbeat periods.
//!
//! Expected: detection stays near-perfect (a dead node is silent forever,
//! a lossy link only delays the verdict), latency creeps up, and false
//! alarms grow roughly like `n · loss^timeout` — the knob a deployment
//! tunes with `timeout_periods`.
//!
//! The sweep then *restores* the failed field with the Voronoi scheme over
//! the same lossy medium: placement notices ride the reliable transport
//! (acks, bounded retries), so the restored coverage should stay at 100%
//! while the retry traffic grows with the loss rate — the cost curve of
//! reliability.

use crate::common::{deploy, ExpParams};
use crate::stats::mean;
use crate::table::Table;
use decor_core::parallel::run_replicas;
use decor_core::{LinkConfig, Placer, SchemeKind, VoronoiDecor};
use decor_net::{FailurePlan, HeartbeatConfig, HeartbeatSim, Network};

/// Loss rates swept (percent).
pub const LOSS_PCTS: [u32; 5] = [0, 10, 20, 30, 40];

/// Heartbeat period used (ticks).
pub const PERIOD: u64 = 1_000;

/// Runs the experiment. Columns: loss %, detection rate %, false alarms,
/// worst latency in periods, restored coverage %, transport retries spent
/// restoring, notices that exhausted their retry budget.
pub fn run(params: &ExpParams) -> Table {
    let mut t = Table::new(
        "ext_loss",
        "Heartbeat failure detection under packet loss (k=2 field, 10% node failures)",
        vec![
            "loss_pct".into(),
            "detection_rate_pct".into(),
            "false_alarms".into(),
            "worst_latency_periods".into(),
            "restore_coverage_pct".into(),
            "restore_retries".into(),
            "restore_gave_up".into(),
        ],
    );
    for &loss in &LOSS_PCTS {
        let results = run_replicas(params.seeds, params.base_seed ^ 0x1055, |_, seed| {
            let (mut map, _, mut cfg) = deploy(params, SchemeKind::Centralized, 2, seed);
            let sensors = map.active_sensors();
            let mut net = Network::new(*map.field());
            for &(_, pos) in &sensors {
                net.add_node(pos, cfg.rs, cfg.rc);
            }
            net.set_loss(loss as f64 / 100.0, seed ^ 0xF0);
            let victims = FailurePlan::Fraction {
                frac: 0.1,
                seed: seed ^ 0x0F,
            }
            .victims(&net);
            let sim = HeartbeatSim::new(HeartbeatConfig {
                period: PERIOD,
                timeout_periods: 3,
                seed: seed ^ 0xBEA7,
            });
            let fail_at = 4 * PERIOD;
            let report = sim.run(&mut net, &victims, fail_at, fail_at + 30 * PERIOD);
            let rate = if victims.is_empty() {
                1.0
            } else {
                report.first_detection.len() as f64 / victims.len() as f64
            };
            let latency = report
                .max_latency(fail_at)
                .map(|l| l as f64 / PERIOD as f64)
                .unwrap_or(0.0);
            // Restoration over the same lossy medium: kill the real
            // victims in the map, then let the distributed placer recover
            // k-coverage with transport-backed notices.
            for &v in &victims {
                map.deactivate_sensor(sensors[v].0);
            }
            if loss > 0 {
                cfg.link = LinkConfig::lossy(loss as f64 / 100.0, seed ^ 0x7A);
            }
            let restore = VoronoiDecor { rc: 8.0 }.place(&mut map, &cfg);
            (
                rate * 100.0,
                report.false_positives.len() as f64,
                latency,
                map.fraction_k_covered(cfg.k) * 100.0,
                restore.messages.retries as f64,
                restore.messages.notices_gave_up as f64,
            )
        });
        t.push_row(vec![
            loss as f64,
            mean(&results.iter().map(|r| r.0).collect::<Vec<_>>()),
            mean(&results.iter().map(|r| r.1).collect::<Vec<_>>()),
            mean(&results.iter().map(|r| r.2).collect::<Vec<_>>()),
            mean(&results.iter().map(|r| r.3).collect::<Vec<_>>()),
            mean(&results.iter().map(|r| r.4).collect::<Vec<_>>()),
            mean(&results.iter().map(|r| r.5).collect::<Vec<_>>()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_costs_false_alarms_not_detections() {
        let params = ExpParams::quick();
        let t = run(&params);
        let clean = &t.rows[0];
        let lossy = t.rows.last().unwrap();
        // Loss-free: no false alarms, high detection.
        assert_eq!(clean[2], 0.0, "no false alarms without loss: {t:?}");
        assert!(clean[1] > 90.0, "detection rate {:?}", clean[1]);
        // 40% loss: detection holds up, false alarms appear.
        assert!(
            lossy[1] > 85.0,
            "detection must survive loss: {:?}",
            lossy[1]
        );
        assert!(
            lossy[2] > clean[2],
            "false alarms must grow with loss: {t:?}"
        );
        // Latency roughly non-decreasing from clean to lossy (high loss
        // adds false positives whose early verdicts can shave the worst
        // real-victim latency, hence the slack).
        assert!(lossy[3] >= clean[3] - 0.75, "latency shape: {t:?}");
        // Restoration reaches full k-coverage at every loss rate — that is
        // the transport's whole job.
        for row in &t.rows {
            assert_eq!(row[4], 100.0, "restored coverage at loss {}: {t:?}", row[0]);
        }
        // Retry traffic is the price: zero without loss, growing with it.
        assert_eq!(clean[5], 0.0, "no retries without loss: {t:?}");
        assert!(
            lossy[5] > t.rows[1][5],
            "retries must grow with loss: {t:?}"
        );
    }
}
