//! Shared experiment setup: the paper's simulation parameters and helpers
//! to build fields, initial deployments and algorithm instances.

use decor_core::{
    CentralizedGreedy, CoverageMap, DeploymentConfig, GridDecor, HoleHealing, LinkConfig, Placer,
    RandomPlacement, SchemeKind, VoronoiDecor,
};
use decor_geom::Aabb;
use decor_lds::{halton_points, random_points};

/// Experiment-scale parameters.
///
/// [`ExpParams::paper`] reproduces §4 exactly: a `100 × 100` field
/// approximated with 2000 Halton points, `rs = 4`, up to 200 initial
/// sensors, figures averaged over 5 randomly generated fields.
/// [`ExpParams::quick`] shrinks everything for smoke tests.
#[derive(Clone, Copy, Debug)]
pub struct ExpParams {
    /// Field edge length.
    pub field_side: f64,
    /// Number of approximation points.
    pub n_points: usize,
    /// Initial randomly-deployed sensors before restoration starts.
    pub initial_nodes: usize,
    /// Replicas (random fields) each data point is averaged over.
    pub seeds: usize,
    /// Base seed; replica `i` derives its own via splitmix.
    pub base_seed: u64,
    /// Packet-loss rate in percent applied to every in-network exchange
    /// (placement notices ride the reliable transport when non-zero).
    pub loss_pct: u32,
}

impl ExpParams {
    /// The paper's configuration (§4, first paragraph).
    pub fn paper() -> Self {
        ExpParams {
            field_side: 100.0,
            n_points: 2000,
            initial_nodes: 200,
            seeds: 5,
            base_seed: 0xDEC0_2007,
            loss_pct: 0,
        }
    }

    /// A reduced configuration for smoke tests and CI.
    pub fn quick() -> Self {
        ExpParams {
            field_side: 100.0,
            n_points: 500,
            initial_nodes: 60,
            seeds: 2,
            base_seed: 0xDEC0,
            loss_pct: 0,
        }
    }

    /// The paper's scenario scaled to `n_points` approximation points at
    /// the paper's point density (0.2 points per unit²): the field side
    /// grows with `√(n / 2000)`, so each decade of points is a decade of
    /// monitored area. This is the axis the `pr6_scale` benchmark sweeps
    /// (2k → 2M points, 100×100 → ~3162×3162).
    pub fn scaled(n_points: usize) -> Self {
        let base = Self::paper();
        assert!(n_points > 0, "a field needs at least one point");
        let factor = (n_points as f64 / base.n_points as f64).sqrt();
        ExpParams {
            field_side: base.field_side * factor,
            n_points,
            ..base
        }
    }

    /// The monitored field.
    pub fn field(&self) -> Aabb {
        Aabb::square(self.field_side)
    }

    /// The link configuration these parameters describe: lossless by
    /// default, seeded per replica when `loss_pct > 0`.
    pub fn link(&self, seed: u64) -> LinkConfig {
        if self.loss_pct > 0 {
            LinkConfig::lossy(self.loss_pct as f64 / 100.0, seed ^ 0x11FF)
        } else {
            LinkConfig::default()
        }
    }

    /// A fresh coverage map with the Halton approximation and `initial`
    /// random sensors (the "partially monitored" starting state).
    pub fn make_map(&self, cfg: &DeploymentConfig, initial: usize, seed: u64) -> CoverageMap {
        let field = self.field();
        let mut map = CoverageMap::new(halton_points(self.n_points, &field), &field, cfg);
        for p in random_points(initial, &field, seed) {
            map.add_sensor(p, cfg.rs);
        }
        map
    }

    /// Instantiates the placer for a scheme. `seed` feeds the random
    /// baseline; DECOR variants and the centralized greedy are
    /// deterministic given the map.
    pub fn placer(&self, scheme: SchemeKind, seed: u64) -> Box<dyn Placer> {
        match scheme {
            SchemeKind::GridSmall => Box::new(GridDecor { cell_size: 5.0 }),
            SchemeKind::GridBig => Box::new(GridDecor { cell_size: 10.0 }),
            SchemeKind::VoronoiSmall => Box::new(VoronoiDecor { rc: 8.0 }),
            SchemeKind::VoronoiBig => Box::new(VoronoiDecor {
                rc: 10.0 * std::f64::consts::SQRT_2,
            }),
            SchemeKind::Centralized => Box::new(CentralizedGreedy),
            SchemeKind::Random => Box::new(RandomPlacement { seed }),
            SchemeKind::Holes => Box::new(HoleHealing),
        }
    }
}

/// Deploys `scheme` at coverage requirement `k` on a fresh random field:
/// builds the map (initial sensors seeded by `seed`), runs the placer, and
/// returns the final map, the outcome, and the config used.
pub fn deploy(
    params: &ExpParams,
    scheme: SchemeKind,
    k: u32,
    seed: u64,
) -> (
    decor_core::CoverageMap,
    decor_core::PlacementOutcome,
    DeploymentConfig,
) {
    deploy_with(params, scheme, k, seed, |_| {})
}

/// [`deploy`] with a hook that customizes the [`DeploymentConfig`] before
/// the map is built — the single code path every caller (figure modules,
/// the scenario matrix runner, the traced variant) funnels through, which
/// is what makes the differential tier's bit-identity claims meaningful.
pub fn deploy_with(
    params: &ExpParams,
    scheme: SchemeKind,
    k: u32,
    seed: u64,
    customize: impl FnOnce(&mut DeploymentConfig),
) -> (
    decor_core::CoverageMap,
    decor_core::PlacementOutcome,
    DeploymentConfig,
) {
    let mut cfg = DeploymentConfig::with_k(k);
    cfg.link = params.link(seed);
    customize(&mut cfg);
    let mut map = params.make_map(&cfg, params.initial_nodes, seed);
    let placer = params.placer(scheme, seed ^ 0x9E37);
    let outcome = placer.place(&mut map, &cfg);
    (map, outcome, cfg)
}

/// [`deploy`] with a JSONL trace sink attached: additionally returns the
/// canonical trace text of the placement run. Each call builds its own
/// sink, so concurrent replicas never interleave their streams.
pub fn deploy_traced(
    params: &ExpParams,
    scheme: SchemeKind,
    k: u32,
    seed: u64,
) -> (
    decor_core::CoverageMap,
    decor_core::PlacementOutcome,
    DeploymentConfig,
    String,
) {
    let (map, outcome, cfg) = deploy_with(params, scheme, k, seed, |cfg| {
        cfg.trace = decor_trace::TraceHandle::jsonl_writer();
    });
    let text = cfg.trace.jsonl().expect("JSONL sink attached above");
    (map, outcome, cfg, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deploy_reaches_full_coverage() {
        let p = ExpParams::quick();
        let (map, out, cfg) = deploy(&p, SchemeKind::Centralized, 1, 3);
        assert!(out.fully_covered);
        assert_eq!(map.count_below(cfg.k), 0);
    }

    #[test]
    fn paper_params_match_section_4() {
        let p = ExpParams::paper();
        assert_eq!(p.field_side, 100.0);
        assert_eq!(p.n_points, 2000);
        assert_eq!(p.initial_nodes, 200);
        assert_eq!(p.seeds, 5);
    }

    #[test]
    fn scaled_params_keep_paper_density() {
        let base = ExpParams::paper();
        let base_density = base.n_points as f64 / (base.field_side * base.field_side);
        for n in [2_000usize, 20_000, 200_000, 2_000_000] {
            let p = ExpParams::scaled(n);
            let density = p.n_points as f64 / (p.field_side * p.field_side);
            assert!(
                (density - base_density).abs() < 1e-9,
                "density drift at n={n}: {density} vs {base_density}"
            );
        }
        assert_eq!(ExpParams::scaled(2000).field_side, 100.0);
    }

    #[test]
    fn make_map_contains_initial_sensors() {
        let p = ExpParams::quick();
        let cfg = DeploymentConfig::with_k(1);
        let map = p.make_map(&cfg, 30, 7);
        assert_eq!(map.n_active_sensors(), 30);
        assert_eq!(map.n_points(), p.n_points);
    }

    #[test]
    fn make_map_is_deterministic_in_seed() {
        let p = ExpParams::quick();
        let cfg = DeploymentConfig::with_k(1);
        let a = p.make_map(&cfg, 20, 3).active_sensors();
        let b = p.make_map(&cfg, 20, 3).active_sensors();
        assert_eq!(a, b);
    }

    #[test]
    fn all_schemes_instantiate() {
        let p = ExpParams::quick();
        for s in SchemeKind::ALL {
            let placer = p.placer(s, 1);
            assert!(!placer.name().is_empty());
        }
    }
}
