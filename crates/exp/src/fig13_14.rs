//! Figures 13 and 14 — area failure and its repair.
//!
//! A disaster disc (radius 24 on the paper's field, ~17% of the area)
//! destroys every node inside. Fig. 13 measures the percentage of points
//! still k-covered right after — expected to be roughly equal across
//! deployment algorithms (the disc wipes everyone out equally). Fig. 14
//! counts the extra nodes each algorithm needs to restore full k-coverage
//! — expected: random 1500–3000, DECOR 25–50% above the centralized
//! greedy, Voronoi big-rc the best DECOR variant.

use crate::common::{deploy, ExpParams};
use crate::fig05_06::disaster_disk;
use crate::stats::mean;
use crate::table::Table;
use decor_core::parallel::run_replicas;
use decor_core::restore::fail_and_restore;
use decor_core::SchemeKind;
use decor_net::FailurePlan;

/// The k values swept (paper: 1..=5).
pub const KS: [u32; 5] = [1, 2, 3, 4, 5];

/// Runs both figures in one pass (the restoration continues from the
/// failed state the coverage measurement sees). Returns `(fig13, fig14)`.
pub fn run(params: &ExpParams) -> (Table, Table) {
    let mut columns = vec!["k".to_owned()];
    columns.extend(SchemeKind::ALL.iter().map(|s| s.label().to_owned()));
    let mut t13 = Table::new(
        "fig13",
        "Percentage of k-covered points after an area failure",
        columns.clone(),
    );
    let mut t14 = Table::new(
        "fig14",
        "Extra nodes needed to recover coverage of the failure area",
        columns,
    );
    let disk = disaster_disk(params);
    for &k in &KS {
        let mut row13 = vec![k as f64];
        let mut row14 = vec![k as f64];
        for &scheme in &SchemeKind::ALL {
            let results = run_replicas(params.seeds, params.base_seed ^ 0x13, |_, seed| {
                let (mut map, _, cfg) = deploy(params, scheme, k, seed);
                let placer = params.placer(scheme, seed ^ 0xABCD);
                let plan = FailurePlan::Area { disk };
                let report = fail_and_restore(&mut map, placer.as_ref(), &cfg, &plan, None);
                (
                    report.coverage_after_failure * 100.0,
                    report.extra_nodes as f64,
                )
            });
            row13.push(mean(&results.iter().map(|&(c, _)| c).collect::<Vec<_>>()));
            row14.push(mean(&results.iter().map(|&(_, e)| e).collect::<Vec<_>>()));
        }
        t13.push_row(row13);
        t14.push_row(row14);
    }
    (t13, t14)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_failure_hits_all_schemes_equally() {
        // Fig. 13's point: the post-failure coverage is (almost) the same
        // for every deployment algorithm.
        let params = ExpParams::quick();
        let k = 1;
        let disk = disaster_disk(&params);
        let after = |scheme: SchemeKind| {
            let v = run_replicas(params.seeds, params.base_seed, |_, seed| {
                let (mut map, _, cfg) = deploy(&params, scheme, k, seed);
                let placer = params.placer(scheme, seed);
                let plan = FailurePlan::Area { disk };
                fail_and_restore(&mut map, placer.as_ref(), &cfg, &plan, None)
                    .coverage_after_failure
                    * 100.0
            });
            mean(&v)
        };
        let central = after(SchemeKind::Centralized);
        let grid = after(SchemeKind::GridSmall);
        assert!(
            (central - grid).abs() < 10.0,
            "post-failure coverage should be similar: {central} vs {grid}"
        );
        assert!(central < 95.0, "the disaster must leave a hole");
    }

    #[test]
    fn restoration_recovers_and_costs_nodes() {
        let params = ExpParams::quick();
        let disk = disaster_disk(&params);
        let (mut map, _, cfg) = deploy(&params, SchemeKind::VoronoiBig, 1, 4);
        let placer = params.placer(SchemeKind::VoronoiBig, 5);
        let plan = FailurePlan::Area { disk };
        let report = fail_and_restore(&mut map, placer.as_ref(), &cfg, &plan, None);
        assert!(report.extra_nodes > 0);
        assert_eq!(report.coverage_after_restore, 1.0);
    }

    #[test]
    fn random_restoration_is_most_expensive() {
        let params = ExpParams::quick();
        let disk = disaster_disk(&params);
        let extra = |scheme: SchemeKind| {
            let v = run_replicas(params.seeds, params.base_seed, |_, seed| {
                let (mut map, _, cfg) = deploy(&params, scheme, 1, seed);
                let placer = params.placer(scheme, seed ^ 0xEE);
                let plan = FailurePlan::Area { disk };
                fail_and_restore(&mut map, placer.as_ref(), &cfg, &plan, None).extra_nodes as f64
            });
            mean(&v)
        };
        let random = extra(SchemeKind::Random);
        let central = extra(SchemeKind::Centralized);
        assert!(
            random > 2.0 * central,
            "random repair ({random}) must dwarf centralized ({central})"
        );
    }
}
