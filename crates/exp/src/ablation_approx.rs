//! Ablation — does the *low-discrepancy* part of DECOR actually matter?
//!
//! DECOR certifies coverage only at its approximation points. If those
//! points cluster (as i.i.d. random points do), the greedy sees "100%
//! covered" while real gaps remain between the points. This experiment
//! deploys against each approximation backend and then audits the result
//! on a dense reference grid the algorithm never saw:
//!
//! - **certified coverage** — what the algorithm believes (always 100%);
//! - **true coverage** — fraction of the dense reference covered at the
//!   requested k.
//!
//! Expectation (and the reason §3.2 insists on Halton/Hammersley): the
//! LDS backends audit at ≈100%, the random backend leaves real holes,
//! and any backend's node count scales with its effective resolution.
//!
//! Since the exact hole detector landed ([`decor_geom::detect_holes`])
//! the audit has a referee that needs no sampling at all: the *exact*
//! area the deployment leaves uncovered ([`exact_missed_area`]), computed
//! from the Voronoi decomposition of the final sensor set. [`run`]
//! reports it per backend and [`run_budget`] sweeps the approximation
//! budget to show how the missed area decays as the sketch densifies —
//! ground truth the dense reference grid only estimates.

use crate::common::ExpParams;
use crate::stats::mean;
use crate::table::Table;
use decor_core::parallel::run_replicas;
use decor_core::{CentralizedGreedy, CoverageMap, DeploymentConfig, Placer};
use decor_geom::{detect_holes, Point};
use decor_lds::PointSetKind;

/// Approximation backends audited, in row order.
pub const BACKENDS: [&str; 4] = ["Halton", "Hammersley", "Random", "Jittered"];

fn backend(idx: usize, seed: u64) -> PointSetKind {
    match idx {
        0 => PointSetKind::Halton,
        1 => PointSetKind::Hammersley,
        2 => PointSetKind::Random(seed),
        3 => PointSetKind::Jittered(seed),
        _ => unreachable!(),
    }
}

/// True coverage audit: fraction of a dense reference grid (4× the
/// approximation density, regular so it has no blind spots) k-covered by
/// the map's active sensors.
pub fn audit_true_coverage(map: &CoverageMap, k: u32) -> f64 {
    let field = map.field();
    let side = ((map.n_points() * 4) as f64).sqrt().ceil() as usize;
    let mut covered = 0usize;
    let mut total = 0usize;
    for i in 0..side {
        for j in 0..side {
            let p = Point::new(
                field.min.x + field.width() * (i as f64 + 0.5) / side as f64,
                field.min.y + field.height() * (j as f64 + 0.5) / side as f64,
            );
            total += 1;
            // Early-exits at the k-th coverer instead of enumerating every
            // sensor in a 64-unit disk around the probe.
            if map.covered_at_least(p, k as usize) {
                covered += 1;
            }
        }
    }
    covered as f64 / total as f64
}

/// The exact referee: total area of the field *really* left 1-uncovered
/// by the map's active sensors (all of sensing radius `rs`), from the
/// Voronoi hole decomposition. No sampling error — this is the ground
/// truth the dense grid estimates.
pub fn exact_missed_area(map: &CoverageMap, rs: f64) -> f64 {
    let sensors: Vec<Point> = map.active_sensors().into_iter().map(|(_, p)| p).collect();
    detect_holes(&sensors, rs, map.field()).total_area()
}

/// Runs the ablation at k = 1 (where approximation holes show directly).
/// Columns: backend index, nodes placed, certified coverage %, true
/// (audited) coverage %, exact missed area (field units²).
pub fn run(params: &ExpParams) -> Table {
    let mut t = Table::new(
        "ablation_approx",
        "Approximation backend ablation (0=Halton, 1=Hammersley, 2=Random, 3=Jittered)",
        vec![
            "backend".into(),
            "nodes_placed".into(),
            "certified_pct".into(),
            "true_pct".into(),
            "missed_area".into(),
        ],
    );
    let cfg = DeploymentConfig::with_k(1);
    let field = params.field();
    for (bi, _) in BACKENDS.iter().enumerate() {
        let results = run_replicas(params.seeds, params.base_seed ^ 0xAB, |_, seed| {
            let pts = backend(bi, seed).points(params.n_points, &field);
            let mut map = CoverageMap::new(pts, &field, &cfg);
            let out = CentralizedGreedy.place(&mut map, &cfg);
            (
                out.placed.len() as f64,
                map.fraction_k_covered(1) * 100.0,
                audit_true_coverage(&map, 1) * 100.0,
                exact_missed_area(&map, cfg.rs),
            )
        });
        t.push_row(vec![
            bi as f64,
            mean(&results.iter().map(|r| r.0).collect::<Vec<_>>()),
            mean(&results.iter().map(|r| r.1).collect::<Vec<_>>()),
            mean(&results.iter().map(|r| r.2).collect::<Vec<_>>()),
            mean(&results.iter().map(|r| r.3).collect::<Vec<_>>()),
        ]);
    }
    t
}

/// Approximation-budget sweep: deploy the Halton sketch at a range of
/// point budgets and referee each deployment with the *exact* missed
/// area. Columns: budget (points), nodes placed, exact missed area,
/// missed area as % of the field. The missed area should decay toward
/// zero as the budget grows — quantifying exactly how much coverage the
/// approximation of §3.2 gives up at each resolution.
pub fn run_budget(params: &ExpParams) -> Table {
    let mut t = Table::new(
        "ablation_budget",
        "Exact missed-hole area vs approximation-point budget (Halton, k=1)",
        vec![
            "budget".into(),
            "nodes_placed".into(),
            "missed_area".into(),
            "missed_pct".into(),
        ],
    );
    let cfg = DeploymentConfig::with_k(1);
    let field = params.field();
    let field_area = field.area();
    // Halton is deterministic, so one deployment per budget is the whole
    // experiment — no replica averaging needed.
    for div in [8usize, 4, 2, 1] {
        let budget = (params.n_points / div).max(16);
        let pts = PointSetKind::Halton.points(budget, &field);
        let mut map = CoverageMap::new(pts, &field, &cfg);
        let out = CentralizedGreedy.place(&mut map, &cfg);
        let missed = exact_missed_area(&map, cfg.rs);
        t.push_row(vec![
            budget as f64,
            out.placed.len() as f64,
            missed,
            100.0 * missed / field_area,
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_backend_certifies_full_coverage() {
        let t = run(&ExpParams::quick());
        for row in &t.rows {
            assert_eq!(row[2], 100.0, "certified coverage is what greedy saw");
        }
    }

    #[test]
    fn halton_audits_better_than_random() {
        let t = run(&ExpParams::quick());
        let halton_true = t.rows[0][3];
        let random_true = t.rows[2][3];
        assert!(
            halton_true >= random_true,
            "halton audit {halton_true}% must be at least random's {random_true}%"
        );
    }

    #[test]
    fn paper_scale_approximation_leaves_few_holes() {
        // At the paper's 2000 points (spacing ≈ 2.2 « rs = 4) the holes
        // between certified points shrink to slivers. Quick mode's 500
        // points (spacing ≈ 4.5 ≈ rs) legitimately audit in the 80s —
        // which is itself the ablation's message: the approximation
        // density is a real knob.
        let params = ExpParams {
            seeds: 1,
            ..ExpParams::paper()
        };
        let cfg = DeploymentConfig::with_k(1);
        let field = params.field();
        let pts = PointSetKind::Halton.points(params.n_points, &field);
        let mut map = CoverageMap::new(pts, &field, &cfg);
        CentralizedGreedy.place(&mut map, &cfg);
        let audited = audit_true_coverage(&map, 1) * 100.0;
        assert!(
            audited > 95.0,
            "paper-scale halton audit too low: {audited}%"
        );
    }

    #[test]
    fn audit_grid_is_denser_than_approximation() {
        // Sanity: a map with no sensors audits at zero.
        let params = ExpParams::quick();
        let cfg = DeploymentConfig::with_k(1);
        let field = params.field();
        let map = CoverageMap::new(PointSetKind::Halton.points(200, &field), &field, &cfg);
        assert_eq!(audit_true_coverage(&map, 1), 0.0);
    }

    #[test]
    fn exact_referee_agrees_with_the_sampled_audit() {
        // The exact missed area and the dense-grid audit measure the same
        // quantity; they must agree to within the grid's resolution.
        let params = ExpParams::quick();
        let cfg = DeploymentConfig::with_k(1);
        let field = params.field();
        let pts = PointSetKind::Halton.points(params.n_points, &field);
        let mut map = CoverageMap::new(pts, &field, &cfg);
        CentralizedGreedy.place(&mut map, &cfg);
        let missed = exact_missed_area(&map, cfg.rs);
        let sampled = (1.0 - audit_true_coverage(&map, 1)) * field.area();
        // One dense-grid cell of slack per boundary-crossing sample row.
        let side = ((map.n_points() * 4) as f64).sqrt().ceil();
        let tol = 4.0 * field.area() / side;
        assert!(
            (missed - sampled).abs() <= tol,
            "exact {missed} vs sampled {sampled} (tol {tol})"
        );
    }

    #[test]
    fn missed_area_decays_with_the_budget() {
        let t = run_budget(&ExpParams::quick());
        assert_eq!(t.rows.len(), 4);
        let coarse = t.rows.first().unwrap();
        let fine = t.rows.last().unwrap();
        assert!(fine[0] > coarse[0], "budgets must increase");
        assert!(
            fine[2] <= coarse[2],
            "densest sketch {} must not miss more than the coarsest {}",
            fine[2],
            coarse[2]
        );
        for row in &t.rows {
            assert!(row[3] >= 0.0 && row[3] < 100.0);
        }
    }
}
