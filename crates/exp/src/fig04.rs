//! Figure 4 — "A field approximated with 2000 points."
//!
//! The paper shows the Halton approximation qualitatively; we both render
//! it (via [`render`], used by `examples/field_points.rs`) and quantify
//! the premise behind it: a low-discrepancy set estimates areas far better
//! than a random set of the same size. The table reports, per generator,
//! the L2 star discrepancy and the mean absolute error (in % of true area)
//! when estimating the area of sensing disks from the point fraction —
//! exactly the measurement DECOR's coverage bookkeeping relies on.

use crate::ascii_plot::scatter;
use crate::common::ExpParams;
use crate::table::Table;
use decor_geom::{Disk, Point};
use decor_lds::{l2_star_discrepancy, PointSetKind};

/// Generator order used in the table rows.
pub const GENERATORS: [(&str, PointSetKind); 6] = [
    ("Halton", PointSetKind::Halton),
    ("Hammersley", PointSetKind::Hammersley),
    ("Sobol", PointSetKind::Sobol),
    ("Faure", PointSetKind::Faure),
    ("Random", PointSetKind::Random(17)),
    ("Jittered", PointSetKind::Jittered(17)),
];

/// Mean absolute relative error (%) of estimating disk areas by the
/// fraction of approximation points falling inside, over a grid of probe
/// disks of radius `rs`.
fn disk_area_error_pct(points: &[Point], field_side: f64, n_points: usize, rs: f64) -> f64 {
    let field_area = field_side * field_side;
    let mut errs = Vec::new();
    // Interior probes only, so the true area is the full disk.
    let probes = 5;
    for i in 0..probes {
        for j in 0..probes {
            let c = Point::new(
                rs + (field_side - 2.0 * rs) * (i as f64 + 0.5) / probes as f64,
                rs + (field_side - 2.0 * rs) * (j as f64 + 0.5) / probes as f64,
            );
            let disk = Disk::new(c, rs);
            let inside = points.iter().filter(|&&p| disk.contains(p)).count();
            let est = inside as f64 / n_points as f64 * field_area;
            errs.push((est - disk.area()).abs() / disk.area() * 100.0);
        }
    }
    crate::stats::mean(&errs)
}

/// Runs the approximation-quality comparison.
///
/// Columns: generator index (see [`GENERATORS`]), L2 star discrepancy of
/// the unit-square set, disk-area estimation error in %.
pub fn run(params: &ExpParams) -> Table {
    let mut t = Table::new(
        "fig04",
        "Field approximation quality by generator (0=Halton, 1=Hammersley, 2=Sobol, 3=Faure, 4=Random, 5=Jittered)",
        vec![
            "generator".into(),
            "l2_star_discrepancy".into(),
            "disk_area_err_pct".into(),
        ],
    );
    let field = params.field();
    for (idx, (_, kind)) in GENERATORS.iter().enumerate() {
        let unit = kind.unit_points(params.n_points);
        let pts = kind.points(params.n_points, &field);
        // Probe radius 10: large enough that even the quick configuration
        // (500 points) expects ~15 points per probe, so relative error
        // measures generator quality rather than pure shot noise.
        let disc = l2_star_discrepancy(&unit);
        let err = disk_area_error_pct(&pts, params.field_side, params.n_points, 10.0);
        t.push_row(vec![idx as f64, disc, err]);
    }
    t
}

/// The Fig. 4 picture: the Halton approximation of the field.
pub fn render(params: &ExpParams) -> String {
    let field = params.field();
    let pts = PointSetKind::Halton.points(params.n_points, &field);
    scatter(&field, &pts, 72, 28, '.')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn halton_beats_random_on_both_metrics() {
        let t = run(&ExpParams::quick());
        assert_eq!(t.rows.len(), 6);
        let halton = &t.rows[0];
        let random = &t.rows[4];
        assert!(halton[1] < random[1], "discrepancy: {t:?}");
        assert!(halton[2] < random[2], "area error: {t:?}");
    }

    #[test]
    fn area_errors_are_small_for_lds() {
        let t = run(&ExpParams::quick());
        // At 500 points a Halton estimate of an r=10 probe disk is tight.
        assert!(t.rows[0][2] < 20.0, "halton err {}", t.rows[0][2]);
    }

    #[test]
    fn render_produces_field_sized_raster() {
        let s = render(&ExpParams::quick());
        assert!(s.lines().count() >= 28);
        assert!(s.contains('.'));
    }
}
