//! Extension — what does asynchrony cost?
//!
//! The paper's schemes are "fully distributed" and explicitly
//! unsynchronized, but any round-based simulation (including its own and
//! our `GridDecor`) aligns the leaders' decisions. The event-driven
//! [`decor_core::AsyncGridDecor`] removes that idealization: leaders wake
//! on independent timers and placement notices take `L` ticks to reach
//! neighbor cells. While a notice is in flight the neighbors' coverage
//! views are stale, so borders get double-covered.
//!
//! This experiment sweeps the staleness ratio `L / T` (notice latency
//! over leader work period) and reports the node count relative to the
//! synchronous scheme.
//!
//! Measured finding (see EXPERIMENTS.md): the asynchronous run *beats*
//! the synchronous one at low latency (≈ −5%) — desynchronized wakes are
//! serialized in time, so each leader usually sees its neighbors' latest
//! placements, whereas lock-step rounds maximize simultaneous-decision
//! collisions. As `L/T` grows the stale-view cost eats that advantage
//! and the async count converges to the synchronous one from below.
//! Within the async family, node count is monotone in `L/T`.

use crate::common::ExpParams;
use crate::stats::mean;
use crate::table::Table;
use decor_core::parallel::run_replicas;
use decor_core::{AsyncGridDecor, DeploymentConfig, GridDecor, Placer};

/// Latency/work-period ratios swept.
pub const RATIOS: [f64; 4] = [0.01, 0.5, 2.0, 5.0];

/// Leader work period (ticks).
pub const WORK: u64 = 1_000;

/// The coverage requirement used.
pub const K: u32 = 2;

/// Runs the experiment. Columns: L/T ratio, async nodes placed, sync
/// nodes placed (constant reference), overhead %.
pub fn run(params: &ExpParams) -> Table {
    let mut t = Table::new(
        "ext_async",
        "Asynchrony cost: nodes placed vs notice-latency/work-period ratio (grid 5x5, k=2)",
        vec![
            "latency_over_period".into(),
            "async_nodes".into(),
            "sync_nodes".into(),
            "overhead_pct".into(),
        ],
    );
    let sync_counts = run_replicas(params.seeds, params.base_seed ^ 0xA57C, |_, seed| {
        let cfg = DeploymentConfig::with_k(K);
        let mut map = params.make_map(&cfg, params.initial_nodes, seed);
        GridDecor { cell_size: 5.0 }
            .place(&mut map, &cfg)
            .placed
            .len() as f64
    });
    let sync = mean(&sync_counts);
    for &ratio in &RATIOS {
        let latency = (ratio * WORK as f64).round().max(1.0) as u64;
        let counts = run_replicas(params.seeds, params.base_seed ^ 0xA57C, |_, seed| {
            let cfg = DeploymentConfig::with_k(K);
            let mut map = params.make_map(&cfg, params.initial_nodes, seed);
            let placer = AsyncGridDecor {
                cell_size: 5.0,
                work_period: WORK,
                notice_latency: latency,
                seed,
            };
            let out = placer.place(&mut map, &cfg);
            assert!(out.fully_covered);
            out.placed.len() as f64
        });
        let a = mean(&counts);
        t.push_row(vec![ratio, a, sync, (a / sync - 1.0) * 100.0]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asynchrony_overhead_grows_with_staleness() {
        let params = ExpParams::quick();
        let t = run(&params);
        assert_eq!(t.rows.len(), RATIOS.len());
        let first = t.rows.first().unwrap();
        let last = t.rows.last().unwrap();
        // Near-synchronous async run lands near the sync reference.
        assert!(
            first[3].abs() < 40.0,
            "L/T≈0 overhead should be moderate: {first:?}"
        );
        // Heavy staleness costs at least as much as near-zero staleness.
        assert!(
            last[1] >= first[1] * 0.95,
            "staleness cannot reduce node count: {t:?}"
        );
    }
}
