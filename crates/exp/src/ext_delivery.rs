//! Extension — field observability through failure and restoration.
//!
//! §1 motivates restoration with data loss: "the data (e.g., sensors'
//! reports) may become stale or get lost". Raw report delivery among
//! *surviving* sensors turns out to be a weak metric: after the §4.2
//! disaster the survivors form a connected ring around the hole and
//! deliver 100% of their own reports — the lost data is the hole itself.
//! The meaningful measure is **observability**: the fraction of field
//! points whose readings reach the base station, i.e. points covered by
//! at least one alive sensor that has a multi-hop route to the sink.
//!
//! Per k: deploy with a DECOR scheme, measure observability, apply the
//! disaster disc, measure again, restore with the same scheme, measure a
//! third time. Expected: 100% → ≈ (100 − disc share)% → 100%.

use crate::common::{deploy, ExpParams};
use crate::fig05_06::disaster_disk;
use crate::stats::mean;
use crate::table::Table;
use decor_core::parallel::run_replicas;
use decor_core::{CoverageMap, DeploymentConfig, SchemeKind};
use decor_geom::Point;
use decor_net::{collect_reports, sink_near, FailurePlan, Network};
use std::collections::VecDeque;

/// The k values swept.
pub const KS: [u32; 3] = [1, 3, 5];

/// Fraction of approximation points covered by at least one alive sensor
/// that can route (multi-hop) to the sink nearest the origin corner.
/// Also returns the mean hop count of one full report round (data-plane
/// cost).
pub fn observability_of(map: &CoverageMap, cfg: &DeploymentConfig) -> (f64, f64) {
    let sensors = map.active_sensors();
    if sensors.is_empty() {
        return (0.0, 0.0);
    }
    let mut net = Network::new(*map.field());
    for &(_, pos) in &sensors {
        net.add_node(pos, cfg.rs, cfg.rc);
    }
    let sink = sink_near(&net, Point::new(0.0, 0.0)).expect("non-empty");
    // Reachable set: BFS from the sink over the alive graph.
    let mut reachable = vec![false; net.len()];
    reachable[sink] = true;
    let mut queue = VecDeque::from([sink]);
    while let Some(u) = queue.pop_front() {
        for v in net.neighbors_of(u) {
            if !reachable[v] {
                reachable[v] = true;
                queue.push_back(v);
            }
        }
    }
    // A point is observable when some covering sensor is reachable.
    // `active_sensors` is ascending in sensor id, so net node index =
    // binary-search position.
    let sids: Vec<usize> = sensors.iter().map(|&(sid, _)| sid).collect();
    let mut observable = 0usize;
    for pid in 0..map.n_points() {
        let p = map.points()[pid];
        let mut any = false;
        map.for_each_sensor_covering(p, |sid, _| {
            if !any {
                let net_id = sids.binary_search(&sid).expect("mirrored");
                any = reachable[net_id];
            }
        });
        if any {
            observable += 1;
        }
    }
    let report = collect_reports(&mut net, sink);
    (observable as f64 / map.n_points() as f64, report.mean_hops)
}

/// The trace-event kinds reported as columns, in column order. The
/// restoration run carries a [`decor_trace::CountingSink`], so each
/// column is the mean number of events of that kind per replica.
pub const TRACE_KINDS: [&str; 6] = [
    "msg_send",
    "msg_deliver",
    "msg_drop",
    "msg_retry",
    "msg_ack",
    "sensor_placed",
];

/// Runs the experiment with the Voronoi (big rc) scheme.
/// Columns: k, observability % before / after disaster / after
/// restoration, mean report hops before, the transport retries the
/// restoration spent (zero on a loss-free medium; set
/// [`ExpParams::loss_pct`] to make the restoration pay for reliability),
/// and per-event-kind trace counts of the restoration run
/// ([`TRACE_KINDS`]).
pub fn run(params: &ExpParams) -> Table {
    let mut cols = vec![
        "k".into(),
        "observable_before_pct".into(),
        "observable_after_failure_pct".into(),
        "observable_after_restore_pct".into(),
        "mean_report_hops".into(),
        "restore_retries".into(),
    ];
    cols.extend(TRACE_KINDS.iter().map(|kind| format!("trace_{kind}")));
    let mut t = Table::new(
        "ext_delivery",
        "Field observability through disaster and restoration (Voronoi big rc)",
        cols,
    );
    let scheme = SchemeKind::VoronoiBig;
    let disk = disaster_disk(params);
    for &k in &KS {
        let results = run_replicas(params.seeds, params.base_seed ^ 0xDE11, |_, seed| {
            let (mut map, _, mut cfg) = deploy(params, scheme, k, seed);
            let (before, hops) = observability_of(&map, &cfg);
            // Disaster.
            let sensors = map.active_sensors();
            let mut net = Network::new(*map.field());
            for &(_, pos) in &sensors {
                net.add_node(pos, cfg.rs, cfg.rc);
            }
            for v in (FailurePlan::Area { disk }).victims(&net) {
                map.deactivate_sensor(sensors[v].0);
            }
            let (after_failure, _) = observability_of(&map, &cfg);
            // Restoration with the same scheme, over the configured
            // medium, with a counting trace sink attached.
            cfg.trace = decor_trace::TraceHandle::counting();
            let placer = params.placer(scheme, seed ^ 0x77);
            let restore = placer.place(&mut map, &cfg);
            let (after_restore, _) = observability_of(&map, &cfg);
            let counts = cfg.trace.counts().unwrap_or_default();
            let kinds = TRACE_KINDS.map(|kind| counts.get(kind).copied().unwrap_or(0) as f64);
            (
                before,
                after_failure,
                after_restore,
                hops,
                restore.messages.retries as f64,
                kinds,
            )
        });
        let mut row = vec![
            k as f64,
            mean(&results.iter().map(|r| r.0 * 100.0).collect::<Vec<_>>()),
            mean(&results.iter().map(|r| r.1 * 100.0).collect::<Vec<_>>()),
            mean(&results.iter().map(|r| r.2 * 100.0).collect::<Vec<_>>()),
            mean(&results.iter().map(|r| r.3).collect::<Vec<_>>()),
            mean(&results.iter().map(|r| r.4).collect::<Vec<_>>()),
        ];
        for i in 0..TRACE_KINDS.len() {
            row.push(mean(&results.iter().map(|r| r.5[i]).collect::<Vec<_>>()));
        }
        t.push_row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disaster_blinds_the_hole_and_restoration_heals_it() {
        let params = ExpParams::quick();
        let disk = disaster_disk(&params);
        let (mut map, _, cfg) = deploy(&params, SchemeKind::VoronoiBig, 1, 5);
        let (before, hops) = observability_of(&map, &cfg);
        assert!(
            before > 0.97,
            "fresh deployment near-fully observable: {before}"
        );
        assert!(hops > 1.0, "multi-hop routing expected");
        let sensors = map.active_sensors();
        let mut net = Network::new(*map.field());
        for &(_, pos) in &sensors {
            net.add_node(pos, cfg.rs, cfg.rc);
        }
        for v in (FailurePlan::Area { disk }).victims(&net) {
            map.deactivate_sensor(sensors[v].0);
        }
        let (after_failure, _) = observability_of(&map, &cfg);
        assert!(
            after_failure < 0.95,
            "the hole must blind the sink: {after_failure}"
        );
        assert!(
            after_failure > 0.6,
            "only the hole goes dark: {after_failure}"
        );
        let placer = params.placer(SchemeKind::VoronoiBig, 9);
        placer.place(&mut map, &cfg);
        let (after_restore, _) = observability_of(&map, &cfg);
        assert!(
            after_restore >= before - 0.01,
            "restoration must restore observability: {after_restore} (before {before})"
        );
    }

    #[test]
    fn restoration_trace_counts_surface_per_kind() {
        let params = ExpParams::quick();
        let disk = disaster_disk(&params);
        let (mut map, _, mut cfg) = deploy(&params, SchemeKind::VoronoiBig, 1, 5);
        let sensors = map.active_sensors();
        let mut net = Network::new(*map.field());
        for &(_, pos) in &sensors {
            net.add_node(pos, cfg.rs, cfg.rc);
        }
        for v in (FailurePlan::Area { disk }).victims(&net) {
            map.deactivate_sensor(sensors[v].0);
        }
        cfg.trace = decor_trace::TraceHandle::counting();
        let placer = params.placer(SchemeKind::VoronoiBig, 9);
        let out = placer.place(&mut map, &cfg);
        let counts = cfg.trace.counts().expect("counting sink attached");
        let get = |k: &str| counts.get(k).copied().unwrap_or(0);
        assert_eq!(get("sensor_placed"), out.placed.len() as u64);
        assert!(get("msg_send") > 0, "placement notices must be traced");
        assert!(get("round_begin") as usize >= out.rounds);
        // Either the last productive round breaks at its bottom (equal)
        // or a final empty round opens and breaks immediately (+1).
        assert!(
            get("round_begin") == get("round_end") || get("round_begin") == get("round_end") + 1,
            "begin {} vs end {}",
            get("round_begin"),
            get("round_end")
        );
    }

    #[test]
    fn empty_map_is_unobservable() {
        let params = ExpParams::quick();
        let cfg = DeploymentConfig::with_k(1);
        let map = CoverageMap::new(
            decor_lds::halton_points(100, &params.field()),
            &params.field(),
            &cfg,
        );
        assert_eq!(observability_of(&map, &cfg).0, 0.0);
    }
}
