//! Pool-poisoning detector for the worker arena.
//!
//! A warm [`WorkerArena`] must be indistinguishable from a cold
//! allocator: whatever sequence of scenario shapes ran through it before,
//! the next run's result — including its trace — must be byte-identical
//! to executing the same `(spec, run)` from fresh state. This proptest
//! interleaves randomized back-to-back runs (varying field size, scheme,
//! k, loss, chaos seed, workload, tracing) through a single arena and
//! compares each against [`execute_run`], so any state that survives
//! [`WorkerArena::recycle`] and leaks into the next run shows up as a
//! fingerprint mismatch.

use decor_core::SchemeKind;
use decor_exp::scenario::{execute_run, execute_run_in, RunSpec, ScenarioSpec, Workload};
use decor_exp::WorkerArena;
use proptest::prelude::*;

/// One randomized cell shape, derived from a single 64-bit draw (the
/// vendored proptest shim has no `prop_oneof!`, so the fields carve up
/// the seed's bits). Kept deliberately small: the point is cross-run
/// contamination, not scale.
#[derive(Clone, Debug)]
struct Shape {
    scheme: SchemeKind,
    workload: Workload,
    k: u32,
    field_side: f64,
    n_points: usize,
    initial_nodes: usize,
    loss_pct: u32,
    chaos_seed: Option<u64>,
    trace: bool,
    base_seed: u64,
}

impl Shape {
    fn from_seed(s: u64) -> Shape {
        let schemes = [
            SchemeKind::Centralized,
            SchemeKind::Random,
            SchemeKind::GridSmall,
            SchemeKind::VoronoiSmall,
        ];
        Shape {
            scheme: schemes[(s % 4) as usize],
            // 3:1 deploy-heavy mix, like the production sweeps.
            workload: if (s >> 2).is_multiple_of(4) {
                Workload::FailureProbe
            } else {
                Workload::Deploy
            },
            k: 1 + ((s >> 4) % 2) as u32,
            field_side: [50.0, 80.0, 100.0][((s >> 5) % 3) as usize],
            n_points: 60 + ((s >> 7) % 101) as usize,
            initial_nodes: 8 + ((s >> 14) % 17) as usize,
            loss_pct: [0, 10, 30][((s >> 19) % 3) as usize],
            chaos_seed: if (s >> 21).is_multiple_of(3) {
                Some(1 + ((s >> 23) % 1_000))
            } else {
                None
            },
            trace: (s >> 33) & 1 == 1,
            base_seed: 1 + ((s >> 34) % 10_000),
        }
    }

    fn spec(&self) -> ScenarioSpec {
        ScenarioSpec {
            scheme: self.scheme,
            workload: self.workload,
            k: self.k,
            field_side: self.field_side,
            n_points: self.n_points,
            initial_nodes: self.initial_nodes,
            loss_pct: self.loss_pct,
            chaos_seed: self.chaos_seed,
            replicas: 1,
            base_seed: self.base_seed,
            trace: self.trace,
            ..ScenarioSpec::default()
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Interleaved shapes through one arena ≡ fresh execution, bit for
    /// bit (fingerprints zero the one nondeterministic field, wall time,
    /// and carry everything else including the trace text).
    #[test]
    fn warm_arena_matches_fresh_execution(seeds in prop::collection::vec(any::<u64>(), 2..5)) {
        let mut arena = WorkerArena::new();
        for (i, &s) in seeds.iter().enumerate() {
            let shape = Shape::from_seed(s);
            let spec = shape.spec();
            let run = RunSpec {
                cell: i,
                replica: 0,
                seed: decor_core::parallel::replica_seed(spec.base_seed, 0),
            };
            let warm = execute_run_in(&spec, &run, &mut arena);
            let fresh = execute_run(&spec, &run);
            prop_assert_eq!(
                warm.fingerprint_json(),
                fresh.fingerprint_json(),
                "arena poisoned by runs 0..{} before shape {:?}",
                i,
                shape
            );
        }
    }
}
