//! A first-divergence differ over canonical JSONL traces.

use std::fmt;

/// The first point where two traces part ways.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Divergence {
    /// 0-based index of the first differing event line.
    pub index: usize,
    /// The left trace's line at that index, `None` when it ended first.
    pub left: Option<String>,
    /// The right trace's line at that index, `None` when it ended first.
    pub right: Option<String>,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn side(line: &Option<String>) -> &str {
            line.as_deref().unwrap_or("<end of trace>")
        }
        writeln!(f, "traces diverge at event {}:", self.index)?;
        writeln!(f, "  left:  {}", side(&self.left))?;
        write!(f, "  right: {}", side(&self.right))
    }
}

/// Compares two canonical JSONL traces line by line and returns the first
/// divergence, or `None` when the traces are identical. A trace that is a
/// strict prefix of the other diverges at the shorter one's end.
pub fn first_divergence(left: &str, right: &str) -> Option<Divergence> {
    let mut l = left.lines();
    let mut r = right.lines();
    let mut index = 0;
    loop {
        match (l.next(), r.next()) {
            (None, None) => return None,
            (a, b) if a == b => index += 1,
            (a, b) => {
                return Some(Divergence {
                    index,
                    left: a.map(str::to_string),
                    right: b.map(str::to_string),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_traces_have_no_divergence() {
        let t = "{\"seq\":0}\n{\"seq\":1}\n";
        assert_eq!(first_divergence(t, t), None);
        assert_eq!(first_divergence("", ""), None);
    }

    #[test]
    fn reports_first_differing_line() {
        let a = "x\ny\nz\n";
        let b = "x\nY\nz\n";
        let d = first_divergence(a, b).unwrap();
        assert_eq!(d.index, 1);
        assert_eq!(d.left.as_deref(), Some("y"));
        assert_eq!(d.right.as_deref(), Some("Y"));
    }

    #[test]
    fn prefix_diverges_at_the_shorter_end() {
        let a = "x\ny\n";
        let b = "x\ny\nz\n";
        let d = first_divergence(a, b).unwrap();
        assert_eq!(d.index, 2);
        assert_eq!(d.left, None);
        assert_eq!(d.right.as_deref(), Some("z"));
    }

    #[test]
    fn display_is_actionable() {
        let d = first_divergence("a\n", "b\n").unwrap();
        let msg = d.to_string();
        assert!(msg.contains("diverge at event 0"));
        assert!(msg.contains("left:  a"));
        assert!(msg.contains("right: b"));
        let d2 = first_divergence("a\n", "a\nb\n").unwrap();
        assert!(d2.to_string().contains("<end of trace>"));
    }

    #[test]
    fn trailing_newline_is_insignificant() {
        assert_eq!(first_divergence("x\ny", "x\ny\n"), None);
    }
}
