//! The typed event vocabulary and its canonical serialization.

use std::fmt::Write as _;

/// One structured simulation event.
///
/// Identifiers are plain `u64`s supplied by the emitter (node ids, sensor
/// ids, cell indices); message kinds are static labels such as `"notice"`
/// or `"ack"`. The variants cover the observable actions of the DECOR
/// protocols: physical transmissions, transport-layer repair, leadership,
/// failure detection, and placement progress.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// A frame was put on the air (charged to the sender).
    MsgSend {
        /// Sending node.
        from: u64,
        /// Intended receiver.
        to: u64,
        /// Message kind label (e.g. `"notice"`, `"ack"`).
        msg: &'static str,
    },
    /// A frame arrived at its receiver.
    MsgDeliver {
        /// Sending node.
        from: u64,
        /// Receiving node.
        to: u64,
        /// Message kind label.
        msg: &'static str,
    },
    /// A frame was lost on the air.
    MsgDrop {
        /// Sending node.
        from: u64,
        /// Intended receiver.
        to: u64,
        /// Message kind label.
        msg: &'static str,
    },
    /// The reliable transport retransmitted a message.
    MsgRetry {
        /// Sending node.
        from: u64,
        /// Intended receiver.
        to: u64,
        /// Per-directed-link sequence number.
        seq: u64,
        /// Data transmissions so far, including this one.
        attempt: u64,
    },
    /// The sender received the acknowledgement — the message concluded
    /// delivered at the transport layer.
    MsgAck {
        /// Original sender (the ack's receiver).
        from: u64,
        /// Original receiver (the ack's sender).
        to: u64,
        /// Per-directed-link sequence number acknowledged.
        seq: u64,
    },
    /// A cell opened its leader election for a round.
    ElectionStart {
        /// Cell index (grid) or agent id (Voronoi).
        cell: u64,
        /// Protocol round.
        round: u64,
    },
    /// A leader emerged.
    ElectionWon {
        /// Cell index.
        cell: u64,
        /// Protocol round.
        round: u64,
        /// Winning node/sensor id.
        leader: u64,
    },
    /// A heartbeat observer declared a neighbor silent.
    HeartbeatMiss {
        /// The observing node.
        observer: u64,
        /// The node declared silent.
        node: u64,
    },
    /// A node failed (ground truth, not detection).
    NodeFailed {
        /// The failed node.
        node: u64,
    },
    /// A restoration sensor was placed.
    SensorPlaced {
        /// Position, x.
        x: f64,
        /// Position, y.
        y: f64,
        /// Benefit score (Eq. 1) the placer attributed to the spot.
        benefit: u64,
        /// Deciding agent: cell index (grid) or agent sensor id (Voronoi).
        agent: u64,
    },
    /// A synchronous protocol round opened.
    RoundBegin {
        /// Scheme label (e.g. `"grid"`, `"voronoi"`).
        scheme: &'static str,
        /// Round number, starting at 0.
        round: u64,
    },
    /// A synchronous protocol round closed.
    RoundEnd {
        /// Round number.
        round: u64,
        /// Sensors placed during the round.
        placed: u64,
    },
    /// Coverage progress after a round: how many approximation points
    /// remain below the target `k`.
    CoverageDelta {
        /// Points still below the coverage target.
        below_target: u64,
    },
    /// A chaos fault crashed a node (ground truth, injected by the fault
    /// plan — distinct from [`TraceEvent::NodeFailed`], which other nets
    /// in the same run may emit under their own id space).
    ChaosCrash {
        /// The crashed node, in the chaos network's id space.
        node: u64,
    },
    /// A chaos fault partitioned the network into two sides.
    ChaosPartition {
        /// Number of node ids on side A of the cut.
        side: u64,
    },
    /// A chaos fault healed the current partition.
    ChaosHeal,
    /// A chaos fault blackholed one directed link.
    ChaosBlackhole {
        /// Sending side of the muted link.
        from: u64,
        /// Receiving side of the muted link.
        to: u64,
    },
    /// A chaos fault restored a blackholed directed link.
    ChaosUnblackhole {
        /// Sending side of the restored link.
        from: u64,
        /// Receiving side of the restored link.
        to: u64,
    },
    /// A chaos fault changed the network-wide extra latency.
    ChaosLatency {
        /// Extra ticks added to every retransmission backoff (0 restores
        /// nominal timing).
        extra: u64,
    },
    /// A chaos fault drained energy from a node's battery accounting.
    ChaosDrain {
        /// The drained node.
        node: u64,
        /// Energy units drained.
        amount: f64,
    },
    /// A rotation shift took over duty (see `decor_net::rotation`).
    ShiftBegin {
        /// The shift now on duty.
        shift: u64,
        /// Nodes awake during this shift period (members plus any
        /// emergency wake-ups and unscheduled nodes).
        awake: u64,
    },
    /// A rotation shift went off duty.
    ShiftEnd {
        /// The shift that just finished its period.
        shift: u64,
    },
    /// A node turned its radio off for a scheduled sleep period.
    NodeSleep {
        /// The node going to sleep.
        node: u64,
    },
    /// A scheduled-asleep node woke back up for duty.
    NodeWake {
        /// The waking node.
        node: u64,
    },
    /// Battery accounting: energy a node spent over its last awake span
    /// (radio traffic plus idle listening), emitted when it goes to sleep
    /// or dies.
    BatteryDrain {
        /// The node whose battery drained.
        node: u64,
        /// Energy units spent since the node last woke.
        amount: f64,
    },
}

impl TraceEvent {
    /// Stable snake_case label of the variant, used as the `"ev"` field of
    /// the canonical serialization and as the [`CountingSink`] key.
    ///
    /// [`CountingSink`]: crate::CountingSink
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::MsgSend { .. } => "msg_send",
            TraceEvent::MsgDeliver { .. } => "msg_deliver",
            TraceEvent::MsgDrop { .. } => "msg_drop",
            TraceEvent::MsgRetry { .. } => "msg_retry",
            TraceEvent::MsgAck { .. } => "msg_ack",
            TraceEvent::ElectionStart { .. } => "election_start",
            TraceEvent::ElectionWon { .. } => "election_won",
            TraceEvent::HeartbeatMiss { .. } => "heartbeat_miss",
            TraceEvent::NodeFailed { .. } => "node_failed",
            TraceEvent::SensorPlaced { .. } => "sensor_placed",
            TraceEvent::RoundBegin { .. } => "round_begin",
            TraceEvent::RoundEnd { .. } => "round_end",
            TraceEvent::CoverageDelta { .. } => "coverage_delta",
            TraceEvent::ChaosCrash { .. } => "chaos_crash",
            TraceEvent::ChaosPartition { .. } => "chaos_partition",
            TraceEvent::ChaosHeal => "chaos_heal",
            TraceEvent::ChaosBlackhole { .. } => "chaos_blackhole",
            TraceEvent::ChaosUnblackhole { .. } => "chaos_unblackhole",
            TraceEvent::ChaosLatency { .. } => "chaos_latency",
            TraceEvent::ChaosDrain { .. } => "chaos_drain",
            TraceEvent::ShiftBegin { .. } => "shift_begin",
            TraceEvent::ShiftEnd { .. } => "shift_end",
            TraceEvent::NodeSleep { .. } => "node_sleep",
            TraceEvent::NodeWake { .. } => "node_wake",
            TraceEvent::BatteryDrain { .. } => "battery_drain",
        }
    }
}

/// A [`TraceEvent`] stamped by the [`TraceHandle`](crate::TraceHandle):
/// `seq` is a monotone per-trace counter, `time` the simulation clock at
/// emission.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceRecord {
    /// Monotone sequence number, 0-based within one trace.
    pub seq: u64,
    /// Simulation time (ticks) when the event was emitted.
    pub time: u64,
    /// The event itself.
    pub event: TraceEvent,
}

impl TraceRecord {
    /// Canonical single-line JSON: fixed key order (`seq`, `t`, `ev`, then
    /// the variant's fields in declaration order), no whitespace, floats
    /// through Rust's shortest-roundtrip `Display`. Two records are equal
    /// iff their canonical lines are byte-identical, which is what the
    /// golden-trace fixtures and the differ rely on.
    pub fn canonical(&self) -> String {
        let mut s = String::with_capacity(96);
        self.canonical_into(&mut s);
        s
    }

    /// Appends [`TraceRecord::canonical`] to `s` without allocating an
    /// intermediate string — the steady-state form for sinks that keep one
    /// buffer across records.
    pub fn canonical_into(&self, s: &mut String) {
        let _ = write!(s, "{{\"seq\":{},\"t\":{},\"ev\":\"", self.seq, self.time);
        s.push_str(self.event.kind());
        s.push('"');
        match &self.event {
            TraceEvent::MsgSend { from, to, msg }
            | TraceEvent::MsgDeliver { from, to, msg }
            | TraceEvent::MsgDrop { from, to, msg } => {
                let _ = write!(s, ",\"from\":{from},\"to\":{to},\"msg\":\"{msg}\"");
            }
            TraceEvent::MsgRetry {
                from,
                to,
                seq,
                attempt,
            } => {
                let _ = write!(
                    s,
                    ",\"from\":{from},\"to\":{to},\"mseq\":{seq},\"attempt\":{attempt}"
                );
            }
            TraceEvent::MsgAck { from, to, seq } => {
                let _ = write!(s, ",\"from\":{from},\"to\":{to},\"mseq\":{seq}");
            }
            TraceEvent::ElectionStart { cell, round } => {
                let _ = write!(s, ",\"cell\":{cell},\"round\":{round}");
            }
            TraceEvent::ElectionWon {
                cell,
                round,
                leader,
            } => {
                let _ = write!(s, ",\"cell\":{cell},\"round\":{round},\"leader\":{leader}");
            }
            TraceEvent::HeartbeatMiss { observer, node } => {
                let _ = write!(s, ",\"observer\":{observer},\"node\":{node}");
            }
            TraceEvent::NodeFailed { node } => {
                let _ = write!(s, ",\"node\":{node}");
            }
            TraceEvent::SensorPlaced {
                x,
                y,
                benefit,
                agent,
            } => {
                let _ = write!(s, ",\"x\":");
                push_f64(s, *x);
                let _ = write!(s, ",\"y\":");
                push_f64(s, *y);
                let _ = write!(s, ",\"benefit\":{benefit},\"agent\":{agent}");
            }
            TraceEvent::RoundBegin { scheme, round } => {
                let _ = write!(s, ",\"scheme\":\"{scheme}\",\"round\":{round}");
            }
            TraceEvent::RoundEnd { round, placed } => {
                let _ = write!(s, ",\"round\":{round},\"placed\":{placed}");
            }
            TraceEvent::CoverageDelta { below_target } => {
                let _ = write!(s, ",\"below\":{below_target}");
            }
            TraceEvent::ChaosCrash { node } => {
                let _ = write!(s, ",\"node\":{node}");
            }
            TraceEvent::ChaosPartition { side } => {
                let _ = write!(s, ",\"side\":{side}");
            }
            TraceEvent::ChaosHeal => {}
            TraceEvent::ChaosBlackhole { from, to } | TraceEvent::ChaosUnblackhole { from, to } => {
                let _ = write!(s, ",\"from\":{from},\"to\":{to}");
            }
            TraceEvent::ChaosLatency { extra } => {
                let _ = write!(s, ",\"extra\":{extra}");
            }
            TraceEvent::ChaosDrain { node, amount } | TraceEvent::BatteryDrain { node, amount } => {
                let _ = write!(s, ",\"node\":{node},\"amount\":");
                push_f64(s, *amount);
            }
            TraceEvent::ShiftBegin { shift, awake } => {
                let _ = write!(s, ",\"shift\":{shift},\"awake\":{awake}");
            }
            TraceEvent::ShiftEnd { shift } => {
                let _ = write!(s, ",\"shift\":{shift}");
            }
            TraceEvent::NodeSleep { node } | TraceEvent::NodeWake { node } => {
                let _ = write!(s, ",\"node\":{node}");
            }
        }
        s.push('}');
    }
}

/// Canonical float formatting: Rust's `Display` emits the shortest string
/// that round-trips, deterministically across platforms. Non-finite values
/// never occur in the simulation; serialize them as `null` rather than
/// produce invalid JSON.
fn push_f64(s: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(s, "{v}");
    } else {
        s.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(event: TraceEvent) -> TraceRecord {
        TraceRecord {
            seq: 3,
            time: 17,
            event,
        }
    }

    #[test]
    fn canonical_is_single_line_fixed_order() {
        let line = rec(TraceEvent::MsgSend {
            from: 1,
            to: 2,
            msg: "notice",
        })
        .canonical();
        assert_eq!(
            line,
            r#"{"seq":3,"t":17,"ev":"msg_send","from":1,"to":2,"msg":"notice"}"#
        );
        assert!(!line.contains('\n'));
    }

    #[test]
    fn every_variant_serializes_with_its_kind() {
        let events = [
            TraceEvent::MsgSend {
                from: 0,
                to: 1,
                msg: "hello",
            },
            TraceEvent::MsgDeliver {
                from: 0,
                to: 1,
                msg: "hello",
            },
            TraceEvent::MsgDrop {
                from: 0,
                to: 1,
                msg: "hello",
            },
            TraceEvent::MsgRetry {
                from: 0,
                to: 1,
                seq: 4,
                attempt: 2,
            },
            TraceEvent::MsgAck {
                from: 0,
                to: 1,
                seq: 4,
            },
            TraceEvent::ElectionStart { cell: 5, round: 1 },
            TraceEvent::ElectionWon {
                cell: 5,
                round: 1,
                leader: 9,
            },
            TraceEvent::HeartbeatMiss {
                observer: 2,
                node: 7,
            },
            TraceEvent::NodeFailed { node: 7 },
            TraceEvent::SensorPlaced {
                x: 1.5,
                y: 2.25,
                benefit: 12,
                agent: 3,
            },
            TraceEvent::RoundBegin {
                scheme: "grid",
                round: 0,
            },
            TraceEvent::RoundEnd {
                round: 0,
                placed: 4,
            },
            TraceEvent::CoverageDelta { below_target: 11 },
            TraceEvent::ChaosCrash { node: 3 },
            TraceEvent::ChaosPartition { side: 4 },
            TraceEvent::ChaosHeal,
            TraceEvent::ChaosBlackhole { from: 1, to: 2 },
            TraceEvent::ChaosUnblackhole { from: 1, to: 2 },
            TraceEvent::ChaosLatency { extra: 16 },
            TraceEvent::ChaosDrain {
                node: 5,
                amount: 1.5,
            },
            TraceEvent::ShiftBegin { shift: 1, awake: 6 },
            TraceEvent::ShiftEnd { shift: 0 },
            TraceEvent::NodeSleep { node: 4 },
            TraceEvent::NodeWake { node: 4 },
            TraceEvent::BatteryDrain {
                node: 4,
                amount: 2.5,
            },
        ];
        for ev in events {
            let kind = ev.kind();
            let line = rec(ev).canonical();
            assert!(
                line.contains(&format!("\"ev\":\"{kind}\"")),
                "{line} missing kind {kind}"
            );
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn floats_use_shortest_roundtrip_display() {
        let line = rec(TraceEvent::SensorPlaced {
            x: 0.1,
            y: 33.0,
            benefit: 1,
            agent: 0,
        })
        .canonical();
        assert!(line.contains("\"x\":0.1,"), "{line}");
        assert!(line.contains("\"y\":33,"), "{line}");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let line = rec(TraceEvent::SensorPlaced {
            x: f64::NAN,
            y: f64::INFINITY,
            benefit: 0,
            agent: 0,
        })
        .canonical();
        assert!(line.contains("\"x\":null,\"y\":null"), "{line}");
    }

    #[test]
    fn chaos_variants_serialize_canonically() {
        assert_eq!(
            rec(TraceEvent::ChaosCrash { node: 9 }).canonical(),
            r#"{"seq":3,"t":17,"ev":"chaos_crash","node":9}"#
        );
        assert_eq!(
            rec(TraceEvent::ChaosHeal).canonical(),
            r#"{"seq":3,"t":17,"ev":"chaos_heal"}"#
        );
        assert_eq!(
            rec(TraceEvent::ChaosDrain {
                node: 2,
                amount: 0.5
            })
            .canonical(),
            r#"{"seq":3,"t":17,"ev":"chaos_drain","node":2,"amount":0.5}"#
        );
    }

    #[test]
    fn rotation_variants_serialize_canonically() {
        assert_eq!(
            rec(TraceEvent::ShiftBegin { shift: 2, awake: 5 }).canonical(),
            r#"{"seq":3,"t":17,"ev":"shift_begin","shift":2,"awake":5}"#
        );
        assert_eq!(
            rec(TraceEvent::ShiftEnd { shift: 1 }).canonical(),
            r#"{"seq":3,"t":17,"ev":"shift_end","shift":1}"#
        );
        assert_eq!(
            rec(TraceEvent::NodeSleep { node: 7 }).canonical(),
            r#"{"seq":3,"t":17,"ev":"node_sleep","node":7}"#
        );
        assert_eq!(
            rec(TraceEvent::NodeWake { node: 7 }).canonical(),
            r#"{"seq":3,"t":17,"ev":"node_wake","node":7}"#
        );
        assert_eq!(
            rec(TraceEvent::BatteryDrain {
                node: 7,
                amount: 12.25
            })
            .canonical(),
            r#"{"seq":3,"t":17,"ev":"battery_drain","node":7,"amount":12.25}"#
        );
    }

    #[test]
    fn identical_records_have_identical_lines() {
        let a = rec(TraceEvent::CoverageDelta { below_target: 2 });
        let b = a.clone();
        assert_eq!(a.canonical(), b.canonical());
    }
}
