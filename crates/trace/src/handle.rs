//! The optionally-attached, cloneable trace handle.

use crate::event::{TraceEvent, TraceRecord};
use crate::sink::{CountingSink, JsonlWriter, TraceSink};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

struct TraceState {
    sink: Box<dyn TraceSink>,
    seq: u64,
    time: u64,
}

/// A cloneable handle through which the simulator emits trace events.
///
/// The default handle is *disabled*: it holds no state at all, and both
/// [`emit`](TraceHandle::emit) and [`set_time`](TraceHandle::set_time)
/// reduce to a branch on a niche-optimized `Option` — zero cost for every
/// caller that never enables tracing. An enabled handle shares one
/// `Arc<Mutex<…>>` among all its clones, so the sink sees a single totally
/// ordered stream with a monotone sequence number no matter how many
/// components (network, transport, placer) hold a copy.
///
/// The handle deliberately has no effect on configuration equality:
/// `PartialEq` always returns `true`, because two deployments differing
/// only in observability are the same deployment.
#[derive(Clone, Default)]
pub struct TraceHandle {
    inner: Option<Arc<Mutex<TraceState>>>,
}

impl TraceHandle {
    /// The disabled handle (same as `Default`).
    pub fn disabled() -> Self {
        TraceHandle { inner: None }
    }

    /// An enabled handle writing into `sink`.
    pub fn with_sink<S: TraceSink + 'static>(sink: S) -> Self {
        TraceHandle {
            inner: Some(Arc::new(Mutex::new(TraceState {
                sink: Box::new(sink),
                seq: 0,
                time: 0,
            }))),
        }
    }

    /// Convenience: an enabled handle over a fresh [`JsonlWriter`].
    pub fn jsonl_writer() -> Self {
        Self::with_sink(JsonlWriter::new())
    }

    /// Convenience: an enabled handle over a fresh [`CountingSink`].
    pub fn counting() -> Self {
        Self::with_sink(CountingSink::new())
    }

    /// True when a sink is attached.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Updates the simulation clock stamped onto subsequent events.
    /// No-op when disabled.
    pub fn set_time(&self, time: u64) {
        if let Some(inner) = &self.inner {
            lock(inner).time = time;
        }
    }

    /// Stamps `event` with the current time and the next sequence number
    /// and hands it to the sink. No-op when disabled.
    pub fn emit(&self, event: TraceEvent) {
        if let Some(inner) = &self.inner {
            let state = &mut *lock(inner);
            let rec = TraceRecord {
                seq: state.seq,
                time: state.time,
                event,
            };
            state.seq += 1;
            state.sink.record(&rec);
        }
    }

    /// Runs `f` on the attached sink; `None` when disabled.
    pub fn with_sink_mut<R>(&self, f: impl FnOnce(&mut dyn TraceSink) -> R) -> Option<R> {
        self.inner.as_ref().map(|inner| f(&mut *lock(inner).sink))
    }

    /// Number of events emitted so far; `None` when disabled.
    pub fn emitted(&self) -> Option<u64> {
        self.inner.as_ref().map(|inner| lock(inner).seq)
    }

    /// A copy of the accumulated JSONL text, when the sink is a
    /// [`JsonlWriter`]; `None` when disabled or a different sink.
    pub fn jsonl(&self) -> Option<String> {
        self.with_sink_mut(|s| {
            s.as_any()
                .downcast_ref::<JsonlWriter>()
                .map(|w| w.contents().to_string())
        })
        .flatten()
    }

    /// A copy of the per-kind counts, when the sink is a [`CountingSink`];
    /// `None` when disabled or a different sink.
    pub fn counts(&self) -> Option<BTreeMap<&'static str, u64>> {
        self.with_sink_mut(|s| {
            s.as_any()
                .downcast_ref::<CountingSink>()
                .map(|c| c.counts().clone())
        })
        .flatten()
    }
}

/// Lock helper: a panicking emitter cannot corrupt a sink (sinks only
/// append), so poisoning is recovered rather than propagated.
fn lock(m: &Arc<Mutex<TraceState>>) -> std::sync::MutexGuard<'_, TraceState> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl std::fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => write!(f, "TraceHandle(disabled)"),
            Some(inner) => write!(f, "TraceHandle(enabled, {} events)", lock(inner).seq),
        }
    }
}

/// Trace attachment never affects configuration identity — all handles
/// compare equal so `DeploymentConfig` equality stays about the deployment.
impl PartialEq for TraceHandle {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::RingBuffer;

    #[test]
    fn disabled_handle_is_inert() {
        let h = TraceHandle::disabled();
        assert!(!h.is_enabled());
        h.set_time(5);
        h.emit(TraceEvent::NodeFailed { node: 1 });
        assert_eq!(h.emitted(), None);
        assert_eq!(h.jsonl(), None);
        assert_eq!(h.counts(), None);
    }

    #[test]
    fn emit_stamps_monotone_seq_and_current_time() {
        let h = TraceHandle::with_sink(RingBuffer::new(10));
        h.emit(TraceEvent::NodeFailed { node: 0 });
        h.set_time(42);
        h.emit(TraceEvent::NodeFailed { node: 1 });
        let stamped = h
            .with_sink_mut(|s| {
                let ring = s.as_any().downcast_ref::<RingBuffer>().unwrap();
                ring.records().map(|r| (r.seq, r.time)).collect::<Vec<_>>()
            })
            .unwrap();
        assert_eq!(stamped, vec![(0, 0), (1, 42)]);
    }

    #[test]
    fn clones_share_one_stream() {
        let h = TraceHandle::counting();
        let h2 = h.clone();
        h.emit(TraceEvent::NodeFailed { node: 0 });
        h2.emit(TraceEvent::NodeFailed { node: 1 });
        assert_eq!(h.emitted(), Some(2));
        assert_eq!(h.counts().unwrap()["node_failed"], 2);
    }

    #[test]
    fn jsonl_accessor_matches_sink_kind() {
        let h = TraceHandle::jsonl_writer();
        h.emit(TraceEvent::NodeFailed { node: 3 });
        let text = h.jsonl().unwrap();
        assert!(text.contains("\"ev\":\"node_failed\""));
        assert!(h.counts().is_none(), "not a counting sink");
    }

    #[test]
    fn handles_always_compare_equal() {
        assert_eq!(TraceHandle::disabled(), TraceHandle::jsonl_writer());
        assert_eq!(TraceHandle::counting(), TraceHandle::counting());
    }

    #[test]
    fn debug_shows_enabledness() {
        assert_eq!(
            format!("{:?}", TraceHandle::disabled()),
            "TraceHandle(disabled)"
        );
        let h = TraceHandle::counting();
        h.emit(TraceEvent::NodeFailed { node: 0 });
        assert_eq!(format!("{h:?}"), "TraceHandle(enabled, 1 events)");
    }
}
