//! Structured simulation tracing for the DECOR reproduction.
//!
//! Every claim the reproduction makes — placement order, message counts,
//! ARQ retries, leader rotations — unfolds as a sequence of discrete
//! events. This crate captures that sequence as typed [`TraceEvent`]s,
//! each stamped with the current simulation time and a monotonic sequence
//! number, so determinism and differential tests can compare *entire event
//! streams* bit-for-bit instead of only end-state statistics.
//!
//! The pieces:
//!
//! - [`TraceEvent`] / [`TraceRecord`]: the typed event vocabulary and its
//!   stamped envelope, with a canonical single-line JSON serialization
//!   ([`TraceRecord::canonical`]) stable across runs and platforms.
//! - [`TraceSink`]: where records go. [`RingBuffer`] keeps the last N
//!   in memory, [`JsonlWriter`] accumulates canonical JSONL text, and
//!   [`CountingSink`] tallies per-kind counts.
//! - [`TraceHandle`]: the cloneable, optionally-attached handle the
//!   simulator and placers carry. A disabled handle (the default) is a
//!   `None` — emitting through it is a branch on a niche-optimized option
//!   and nothing else, which keeps tracing zero-cost for every caller
//!   that never asks for it.
//! - [`first_divergence`] / [`Divergence`]: a line-based differ over two
//!   canonical traces that reports the first event where they part ways.
//!
//! The crate is dependency-free and knows nothing about networks or
//! coverage maps; node/sensor identifiers arrive as plain `u64`.

mod diff;
mod event;
mod handle;
mod sink;

pub use diff::{first_divergence, Divergence};
pub use event::{TraceEvent, TraceRecord};
pub use handle::TraceHandle;
pub use sink::{CountingSink, JsonlWriter, RingBuffer, TraceSink};
