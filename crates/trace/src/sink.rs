//! Where trace records go.

use crate::event::TraceRecord;
use std::any::Any;
use std::collections::{BTreeMap, VecDeque};

/// A consumer of stamped trace records.
///
/// Sinks receive records one at a time, in emission order, under the
/// [`TraceHandle`](crate::TraceHandle)'s lock — implementations should be
/// cheap and must not re-enter the handle. `as_any`/`as_any_mut` allow the
/// handle's typed accessors to recover the concrete sink after a run.
pub trait TraceSink: Send {
    /// Consumes one record.
    fn record(&mut self, rec: &TraceRecord);
    /// Upcast for typed recovery of the concrete sink.
    fn as_any(&self) -> &dyn Any;
    /// Mutable upcast for typed recovery of the concrete sink.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Keeps the most recent `capacity` records in memory — the flight-recorder
/// sink for interactive debugging, bounded regardless of run length.
#[derive(Debug)]
pub struct RingBuffer {
    capacity: usize,
    buf: VecDeque<TraceRecord>,
    /// Total records ever offered, including evicted ones.
    total: u64,
}

impl RingBuffer {
    /// A ring holding at most `capacity` records (capacity 0 counts only).
    pub fn new(capacity: usize) -> Self {
        RingBuffer {
            capacity,
            buf: VecDeque::with_capacity(capacity.min(4096)),
            total: 0,
        }
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.buf.iter()
    }

    /// Number of retained records (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total records ever offered, including those evicted by the cap.
    pub fn total_seen(&self) -> u64 {
        self.total
    }
}

impl TraceSink for RingBuffer {
    fn record(&mut self, rec: &TraceRecord) {
        self.total += 1;
        if self.capacity == 0 {
            return;
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back(rec.clone());
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Accumulates the canonical JSONL text of every record — one
/// [`TraceRecord::canonical`] line per event, `\n`-terminated. The caller
/// writes the text wherever it wants (a file for `--trace-out`, memory for
/// the golden-trace tests).
#[derive(Debug, Default)]
pub struct JsonlWriter {
    text: String,
}

impl JsonlWriter {
    /// An empty writer.
    pub fn new() -> Self {
        JsonlWriter::default()
    }

    /// The accumulated JSONL text.
    pub fn contents(&self) -> &str {
        &self.text
    }

    /// Consumes the writer, returning the accumulated text.
    pub fn into_string(self) -> String {
        self.text
    }

    /// Number of lines (= records) accumulated.
    pub fn lines(&self) -> usize {
        self.text.lines().count()
    }
}

impl TraceSink for JsonlWriter {
    fn record(&mut self, rec: &TraceRecord) {
        // Render straight into the accumulated text: one growing buffer,
        // no per-record intermediate string.
        rec.canonical_into(&mut self.text);
        self.text.push('\n');
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Tallies records per event kind — the cheapest sink, used for the
/// per-event-kind columns of the delivery experiment.
#[derive(Debug, Default)]
pub struct CountingSink {
    counts: BTreeMap<&'static str, u64>,
}

impl CountingSink {
    /// An empty tally.
    pub fn new() -> Self {
        CountingSink::default()
    }

    /// Count for one event kind (label as in
    /// [`TraceEvent::kind`](crate::TraceEvent::kind)), 0 when never seen.
    pub fn count(&self, kind: &str) -> u64 {
        self.counts.get(kind).copied().unwrap_or(0)
    }

    /// All non-zero counts, ordered by kind label.
    pub fn counts(&self) -> &BTreeMap<&'static str, u64> {
        &self.counts
    }

    /// Total records across all kinds.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }
}

impl TraceSink for CountingSink {
    fn record(&mut self, rec: &TraceRecord) {
        *self.counts.entry(rec.event.kind()).or_insert(0) += 1;
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;

    fn rec(seq: u64) -> TraceRecord {
        TraceRecord {
            seq,
            time: seq * 2,
            event: TraceEvent::NodeFailed { node: seq },
        }
    }

    #[test]
    fn ring_buffer_keeps_only_the_tail() {
        let mut ring = RingBuffer::new(3);
        for i in 0..10 {
            ring.record(&rec(i));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.total_seen(), 10);
        let seqs: Vec<u64> = ring.records().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![7, 8, 9]);
    }

    #[test]
    fn zero_capacity_ring_only_counts() {
        let mut ring = RingBuffer::new(0);
        ring.record(&rec(0));
        assert!(ring.is_empty());
        assert_eq!(ring.total_seen(), 1);
    }

    #[test]
    fn jsonl_writer_is_one_line_per_record() {
        let mut w = JsonlWriter::new();
        w.record(&rec(0));
        w.record(&rec(1));
        assert_eq!(w.lines(), 2);
        assert!(w.contents().ends_with('\n'));
        let first = w.contents().lines().next().unwrap();
        assert_eq!(first, rec(0).canonical());
    }

    #[test]
    fn counting_sink_tallies_by_kind() {
        let mut c = CountingSink::new();
        c.record(&rec(0));
        c.record(&rec(1));
        c.record(&TraceRecord {
            seq: 2,
            time: 0,
            event: TraceEvent::RoundBegin {
                scheme: "grid",
                round: 0,
            },
        });
        assert_eq!(c.count("node_failed"), 2);
        assert_eq!(c.count("round_begin"), 1);
        assert_eq!(c.count("msg_send"), 0);
        assert_eq!(c.total(), 3);
    }
}
