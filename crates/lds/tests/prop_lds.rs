//! Property tests for the low-discrepancy machinery.

use decor_lds::vdc::splitmix64;
use decor_lds::{
    hammersley_unit, l2_star_discrepancy, radical_inverse, scrambled_radical_inverse,
    star_discrepancy, HaltonSequence, PointSetKind, Sobol2D,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The radical inverse is injective on any window of indices that fit
    /// within the same digit budget.
    #[test]
    fn radical_inverse_injective(base in 2u32..16, start in 0u64..1000) {
        let vals: Vec<f64> = (start..start + 64).map(|i| radical_inverse(i, base)).collect();
        let mut sorted = vals.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        sorted.dedup();
        prop_assert_eq!(sorted.len(), 64);
    }

    /// Scrambling preserves the unit interval and injectivity.
    #[test]
    fn scrambled_inverse_valid(base in 2u32..16, seed in any::<u64>()) {
        let vals: Vec<f64> = (0..128).map(|i| scrambled_radical_inverse(i, base, seed)).collect();
        for &v in &vals {
            prop_assert!((0.0..1.0).contains(&v));
        }
        let mut sorted = vals;
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = sorted.len();
        sorted.dedup_by(|a, b| (*a - *b).abs() < 1e-15);
        prop_assert_eq!(sorted.len(), n);
    }

    /// Halton elements always live in the open unit square (index >= 1)
    /// and leaping subsamples the base sequence exactly.
    #[test]
    fn halton_leap_consistency(leap in 1u64..8, offset in 0u64..16, i in 1u64..500) {
        let base = HaltonSequence::new(2);
        let leaped = HaltonSequence::new(2).leaped(leap, offset);
        prop_assert_eq!(leaped.element(i), base.element(offset + leap * i));
    }

    /// Every generator's unit points stay in [0, 1)² and come in the
    /// requested count.
    #[test]
    fn generators_produce_valid_unit_points(n in 1usize..300, seed in any::<u64>()) {
        for kind in [
            PointSetKind::Halton,
            PointSetKind::Hammersley,
            PointSetKind::Sobol,
            PointSetKind::Random(seed),
            PointSetKind::Jittered(seed),
        ] {
            let pts = kind.unit_points(n);
            prop_assert_eq!(pts.len(), n, "{:?}", kind);
            for &(u, v) in &pts {
                prop_assert!((0.0..1.0).contains(&u) && (0.0..1.0).contains(&v), "{:?}", kind);
            }
        }
    }

    /// Discrepancy measures are permutation invariant.
    #[test]
    fn discrepancy_permutation_invariant(shift in 1usize..30) {
        let pts = hammersley_unit(64);
        let mut rotated = pts.clone();
        rotated.rotate_left(shift % 64);
        prop_assert!((star_discrepancy(&pts) - star_discrepancy(&rotated)).abs() < 1e-12);
        prop_assert!((l2_star_discrepancy(&pts) - l2_star_discrepancy(&rotated)).abs() < 1e-12);
    }

    /// Adding a duplicate of an existing point cannot reduce the star
    /// discrepancy below 0 nor take it above 1.
    #[test]
    fn discrepancy_stays_bounded_under_duplication(idx in any::<prop::sample::Index>()) {
        let mut pts = hammersley_unit(32);
        let dup = pts[idx.index(pts.len())];
        pts.push(dup);
        let d = star_discrepancy(&pts);
        prop_assert!((0.0..=1.0).contains(&d));
    }

    /// splitmix64 is a bijection-ish mixer: no collisions on contiguous
    /// ranges (true bijection; verify on a window).
    #[test]
    fn splitmix_window_collision_free(start in any::<u64>()) {
        let window = 128u64;
        let mut outs: Vec<u64> = (0..window).map(|i| splitmix64(start.wrapping_add(i))).collect();
        outs.sort_unstable();
        outs.dedup();
        prop_assert_eq!(outs.len(), window as usize);
    }

    /// Sobol points of any prefix length are distinct.
    #[test]
    fn sobol_prefix_distinct(n in 1usize..512) {
        let mut pts = Sobol2D::new().take(n);
        pts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        pts.dedup();
        prop_assert_eq!(pts.len(), n);
    }
}
