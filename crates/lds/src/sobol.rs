//! A 2-D Sobol sequence (extension beyond the paper, used in ablations).
//!
//! Dimension 0 is the base-2 van der Corput sequence; dimension 1 uses the
//! classic direction numbers from the primitive polynomial `x² + x + 1`
//! with initial direction number `m₁ = 1`. Implemented with the Gray-code
//! incremental construction, so generating `n` points costs O(n).

/// Incremental 2-D Sobol generator.
///
/// ```
/// use decor_lds::Sobol2D;
/// let pts = Sobol2D::new().take(4);
/// assert_eq!(pts[0], (0.5, 0.5));
/// ```
#[derive(Clone, Debug)]
pub struct Sobol2D {
    index: u64,
    x: u64,
    y: u64,
    v1: [u64; 64],
    v2: [u64; 64],
}

const BITS: u32 = 52; // keep within f64 mantissa precision

impl Default for Sobol2D {
    fn default() -> Self {
        Self::new()
    }
}

impl Sobol2D {
    /// A fresh generator positioned before the first element.
    pub fn new() -> Self {
        let mut v1 = [0u64; 64];
        let mut v2 = [0u64; 64];
        // Dimension 1: van der Corput — v_j = 2^(BITS - j).
        for (j, v) in v1.iter_mut().enumerate().take(BITS as usize) {
            *v = 1u64 << (BITS - 1 - j as u32);
        }
        // Dimension 2: polynomial x^2 + x + 1 (degree s=2, a=1), m = [1, 3].
        let mut m = [0u64; 64];
        m[0] = 1;
        m[1] = 3;
        for j in 2..BITS as usize {
            // Recurrence: m_j = 2*a1*m_{j-1} XOR (4 * m_{j-2}) XOR m_{j-2}
            m[j] = (2 * m[j - 1]) ^ (4 * m[j - 2]) ^ m[j - 2];
        }
        for j in 0..BITS as usize {
            v2[j] = m[j] << (BITS - 1 - j as u32);
        }
        Sobol2D {
            index: 0,
            x: 0,
            y: 0,
            v1,
            v2,
        }
    }

    /// The next point of the sequence.
    pub fn next_point(&mut self) -> (f64, f64) {
        // Gray-code order: flip the direction number of the lowest zero bit
        // of the running index.
        let c = self.index.trailing_ones() as usize;
        debug_assert!(c < BITS as usize, "sobol index exhausted");
        self.x ^= self.v1[c];
        self.y ^= self.v2[c];
        self.index += 1;
        let scale = 1.0 / (1u64 << BITS) as f64;
        (self.x as f64 * scale, self.y as f64 * scale)
    }

    /// The first `n` points of a fresh run of the sequence.
    pub fn take(mut self, n: usize) -> Vec<(f64, f64)> {
        (0..n).map(|_| self.next_point()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_prefix() {
        // Gray-code ordering: the first three points match the natural
        // order, the fourth is the Gray-code successor of (0.25, 0.75).
        let pts = Sobol2D::new().take(4);
        assert_eq!(pts[0], (0.5, 0.5));
        assert_eq!(pts[1], (0.75, 0.25));
        assert_eq!(pts[2], (0.25, 0.75));
        assert_eq!(pts[3], (0.375, 0.625));
    }

    #[test]
    fn values_in_unit_square() {
        for (u, v) in Sobol2D::new().take(4096) {
            assert!((0.0..1.0).contains(&u));
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn points_are_distinct() {
        let mut pts = Sobol2D::new().take(4096);
        pts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        pts.dedup();
        assert_eq!(pts.len(), 4096);
    }

    #[test]
    fn power_of_two_blocks_are_balanced() {
        // Sobol is a (t, m, 2)-net in base 2: each block of 2^m points puts
        // 2^(m-1) points in each half of the square. Our stream starts at
        // index 1 (skipping the all-zeros point), shifting counts by at
        // most one.
        let pts = Sobol2D::new().take(256);
        let left = pts.iter().filter(|&&(u, _)| u < 0.5).count();
        let bottom = pts.iter().filter(|&&(_, v)| v < 0.5).count();
        assert!((127..=129).contains(&left), "left half count {left}");
        assert!((127..=129).contains(&bottom), "bottom half count {bottom}");
    }

    #[test]
    fn generator_is_deterministic() {
        assert_eq!(Sobol2D::new().take(100), Sobol2D::new().take(100));
    }
}
