//! Hammersley point sets.
//!
//! The `N`-point 2-D Hammersley set is `{(i/N, φ₂(i)) : i = 0..N-1}` where
//! `φ₂` is the base-2 radical inverse. Trading one radical-inverse
//! dimension for the regular `i/N` grid improves the discrepancy bound to
//! `O(log N / N)` — the paper cites this alongside Halton and reports
//! "similar results". Unlike Halton, the set is *closed*: `N` must be known
//! up front, and prefixes of a larger set are not themselves Hammersley.

use crate::vdc::radical_inverse;
use decor_geom::{Aabb, Point};

/// The `n`-point 2-D Hammersley set on the unit square.
///
/// Uses `( (i + 0.5) / n, φ₂(i) )` — the half-offset keeps the first
/// coordinate strictly inside `(0, 1)`, matching the Halton convention of
/// avoiding boundary points.
pub fn hammersley_unit(n: usize) -> Vec<(f64, f64)> {
    (0..n)
        .map(|i| ((i as f64 + 0.5) / n as f64, radical_inverse(i as u64, 2)))
        .collect()
}

/// The `n`-point Hammersley set stretched over `field`.
pub fn hammersley_points(n: usize, field: &Aabb) -> Vec<Point> {
    hammersley_unit(n)
        .into_iter()
        .map(|(u, v)| field.from_unit(u, v))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_and_range() {
        let pts = hammersley_unit(100);
        assert_eq!(pts.len(), 100);
        for &(u, v) in &pts {
            assert!(u > 0.0 && u < 1.0, "u={u}");
            assert!((0.0..1.0).contains(&v), "v={v}");
        }
    }

    #[test]
    fn first_coordinate_is_regular_grid() {
        let pts = hammersley_unit(4);
        let us: Vec<f64> = pts.iter().map(|&(u, _)| u).collect();
        assert_eq!(us, vec![0.125, 0.375, 0.625, 0.875]);
    }

    #[test]
    fn second_coordinate_is_vdc() {
        let pts = hammersley_unit(4);
        let vs: Vec<f64> = pts.iter().map(|&(_, v)| v).collect();
        assert_eq!(vs, vec![0.0, 0.5, 0.25, 0.75]);
    }

    #[test]
    fn points_are_distinct() {
        let mut pts = hammersley_unit(1024);
        pts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        pts.dedup();
        assert_eq!(pts.len(), 1024);
    }

    #[test]
    fn equidistribution_in_strips() {
        // Every vertical tenth of the square holds exactly n/10 points
        // (the first coordinate is a regular grid).
        let n = 1000;
        let pts = hammersley_unit(n);
        let mut counts = [0usize; 10];
        for (u, _) in pts {
            counts[((u * 10.0) as usize).min(9)] += 1;
        }
        assert!(counts.iter().all(|&c| c == n / 10), "{counts:?}");
    }

    #[test]
    fn field_mapping() {
        let field = Aabb::square(100.0);
        let pts = hammersley_points(2000, &field);
        assert_eq!(pts.len(), 2000);
        assert!(pts.iter().all(|&p| field.contains(p)));
    }

    #[test]
    fn empty_set() {
        assert!(hammersley_unit(0).is_empty());
    }
}
