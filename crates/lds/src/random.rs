//! Random point sets — the baselines the paper's discrepancy argument
//! compares against, and the generator for random sensor fields.

use decor_geom::{Aabb, Point};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `n` i.i.d. uniform points on the unit square, deterministic in `seed`.
pub fn random_unit(n: usize, seed: u64) -> Vec<(f64, f64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect()
}

/// `n` uniform random points over `field`, deterministic in `seed`.
///
/// This also generates the *initial sensor deployments* of the experiments
/// ("up to 200 sensor nodes ... on a randomly generated field").
pub fn random_points(n: usize, field: &Aabb, seed: u64) -> Vec<Point> {
    let mut out = Vec::with_capacity(n);
    random_points_into(n, field, seed, &mut out);
    out
}

/// Buffer-reuse variant of [`random_points`]: clears `out` and refills it
/// in place, preserving its capacity. Draws the identical RNG stream, so
/// the contents are bit-equal to a fresh [`random_points`] call — warm
/// fleet workers rely on that to keep pooled runs deterministic.
pub fn random_points_into(n: usize, field: &Aabb, seed: u64, out: &mut Vec<Point>) {
    out.clear();
    let mut rng = StdRng::seed_from_u64(seed);
    out.extend((0..n).map(|_| {
        let u = rng.gen::<f64>();
        let v = rng.gen::<f64>();
        field.from_unit(u, v)
    }));
}

/// Jittered (stratified) sampling: the unit square is divided into a
/// `ceil(√n) × ceil(√n)` grid and one uniform point is drawn per cell until
/// `n` points exist. Better discrepancy than i.i.d. sampling, worse than
/// Halton — a useful middle rung for the approximation ablation.
pub fn jittered_unit(n: usize, seed: u64) -> Vec<(f64, f64)> {
    if n == 0 {
        return Vec::new();
    }
    let side = (n as f64).sqrt().ceil() as usize;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pts = Vec::with_capacity(n);
    'outer: for j in 0..side {
        for i in 0..side {
            if pts.len() == n {
                break 'outer;
            }
            let u = (i as f64 + rng.gen::<f64>()) / side as f64;
            let v = (j as f64 + rng.gen::<f64>()) / side as f64;
            pts.push((u, v));
        }
    }
    pts
}

/// Jittered sampling mapped over `field`.
pub fn jittered_points(n: usize, field: &Aabb, seed: u64) -> Vec<Point> {
    jittered_unit(n, seed)
        .into_iter()
        .map(|(u, v)| field.from_unit(u, v))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(random_unit(100, 5), random_unit(100, 5));
        assert_ne!(random_unit(100, 5), random_unit(100, 6));
        assert_eq!(jittered_unit(100, 5), jittered_unit(100, 5));
    }

    #[test]
    fn counts_and_ranges() {
        for pts in [random_unit(257, 1), jittered_unit(257, 1)] {
            assert_eq!(pts.len(), 257);
            for (u, v) in pts {
                assert!((0.0..1.0).contains(&u) && (0.0..1.0).contains(&v));
            }
        }
    }

    #[test]
    fn jittered_fills_strata() {
        // With n a perfect square, each grid cell holds exactly one point.
        let n = 64;
        let pts = jittered_unit(n, 3);
        let side = 8;
        let mut seen = vec![false; n];
        for (u, v) in pts {
            let cell = (v * side as f64) as usize * side + (u * side as f64) as usize;
            assert!(!seen[cell], "two points in stratum {cell}");
            seen[cell] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn field_mapping_contains_points() {
        let field = Aabb::new(Point::new(-10.0, 5.0), Point::new(30.0, 45.0));
        for pts in [
            random_points(300, &field, 9),
            jittered_points(300, &field, 9),
        ] {
            assert_eq!(pts.len(), 300);
            assert!(pts.iter().all(|&p| field.contains(p)));
        }
    }

    #[test]
    fn into_variant_matches_and_reuses_capacity() {
        let field = Aabb::new(Point::new(-10.0, 5.0), Point::new(30.0, 45.0));
        let fresh = random_points(200, &field, 42);
        let mut buf = Vec::new();
        random_points_into(200, &field, 42, &mut buf);
        assert_eq!(buf, fresh);
        let cap = buf.capacity();
        random_points_into(150, &field, 7, &mut buf);
        assert_eq!(buf, random_points(150, &field, 7));
        assert_eq!(buf.capacity(), cap, "refill must not reallocate");
    }

    #[test]
    fn zero_points() {
        assert!(random_unit(0, 1).is_empty());
        assert!(jittered_unit(0, 1).is_empty());
    }
}
