//! The 2-D Faure sequence (extension beyond the paper).
//!
//! Faure sequences use one prime base `b >= d` for *all* dimensions;
//! dimension `j` applies the `j`-th power of the Pascal matrix (mod `b`)
//! to the digit vector before mirroring. In 2-D with `b = 2`, dimension 0
//! is the plain van der Corput sequence and dimension 1 scrambles digits
//! with Pascal's triangle mod 2 (the Sierpiński pattern). Faure sets are
//! (0, s)-sequences — the strongest equidistribution class — and serve as
//! another reference generator in the approximation ablations.

/// Maximum number of base-2 digits processed (f64 mantissa budget).
const DIGITS: usize = 52;

/// The `i`-th element of the 2-D Faure sequence (base 2).
///
/// Element 0 is `(0, 0)`; callers typically start at index 1, as with
/// Halton.
pub fn faure2d(i: u64) -> (f64, f64) {
    // Digit vector of i, least-significant first.
    let mut digits = [0u8; DIGITS];
    let mut v = i;
    let mut n = 0;
    while v > 0 && n < DIGITS {
        digits[n] = (v & 1) as u8;
        v >>= 1;
        n += 1;
    }
    // Dimension 0: plain radical inverse.
    let mut x = 0.0;
    let mut scale = 0.5;
    for &d in digits.iter().take(n) {
        x += d as f64 * scale;
        scale *= 0.5;
    }
    // Dimension 1: y digits = Pascal matrix (mod 2) times digit vector.
    // Pascal mod 2: C(r, c) mod 2 = 1 iff (c & r) == c (Lucas' theorem),
    // with y_r = Σ_c C(c, r)·digit_c mod 2 for c >= r.
    let mut y = 0.0;
    scale = 0.5;
    for r in 0..n {
        let mut bit = 0u8;
        for (c, &d) in digits.iter().enumerate().take(n).skip(r) {
            // C(c, r) mod 2 == 1 iff r's bits are a subset of c's bits.
            if d == 1 && (c & r) == r {
                bit ^= 1;
            }
        }
        y += bit as f64 * scale;
        scale *= 0.5;
    }
    (x, y)
}

/// The first `n` Faure points (indices `1..=n`, skipping the origin).
pub fn faure_unit(n: usize) -> Vec<(f64, f64)> {
    (1..=n as u64).map(faure2d).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discrepancy::star_discrepancy;
    use crate::random::random_unit;

    #[test]
    fn first_dimension_is_van_der_corput() {
        for i in 0..256 {
            let (x, _) = faure2d(i);
            assert_eq!(x, crate::vdc::radical_inverse(i, 2), "index {i}");
        }
    }

    #[test]
    fn known_small_elements() {
        // i=1: digits [1]; x = 1/2; y_0 = C(0,0)*1 = 1 -> y = 1/2.
        assert_eq!(faure2d(1), (0.5, 0.5));
        // i=2: digits [0,1]; x = 1/4; y_0 = C(1,0)*1 = 1, y_1 = C(1,1)*1 = 1
        // -> y = 1/2 + 1/4 = 3/4.
        assert_eq!(faure2d(2), (0.25, 0.75));
        // i=3: digits [1,1]; x = 3/4; y_0 = C(0,0)+C(1,0) = 0, y_1 = C(1,1) = 1
        // -> y = 1/4.
        assert_eq!(faure2d(3), (0.75, 0.25));
    }

    #[test]
    fn points_stay_in_unit_square_and_distinct() {
        let pts = faure_unit(2048);
        for &(x, y) in &pts {
            assert!((0.0..1.0).contains(&x) && (0.0..1.0).contains(&y));
        }
        let mut sorted = pts;
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        sorted.dedup();
        assert_eq!(sorted.len(), 2048);
    }

    #[test]
    fn faure_has_low_discrepancy() {
        let n = 256;
        let df = star_discrepancy(&faure_unit(n));
        let dr = star_discrepancy(&random_unit(n, 5));
        assert!(df < dr, "faure {df} must beat random {dr}");
        // (0, s)-sequence quality: comparable to Halton.
        let dh = star_discrepancy(&crate::halton::HaltonSequence::new(2).take_unit2(n));
        assert!(df < 2.0 * dh, "faure {df} should be in halton's class {dh}");
    }

    #[test]
    fn power_of_two_blocks_are_balanced() {
        // (0, 2)-sequence in base 2: every elementary dyadic box of area
        // 2^-m holds exactly one point from each block of 2^m points.
        // Check halves for the first full block after the origin skip.
        let pts: Vec<(f64, f64)> = (0..256u64).map(faure2d).collect();
        let left = pts.iter().filter(|&&(x, _)| x < 0.5).count();
        let bottom = pts.iter().filter(|&&(_, y)| y < 0.5).count();
        assert_eq!(left, 128);
        assert_eq!(bottom, 128);
    }
}
