//! Discrepancy measures — the formal yardstick behind §3.2's claim that
//! Halton/Hammersley points "approximate the area much better than a
//! random set of points of equal cardinality".
//!
//! Two measures:
//! - [`star_discrepancy`] — the exact L∞ star discrepancy
//!   `D*_N = sup_{(x,y)} |#{p_i ∈ [0,x)×[0,y)}/N − x·y|`, computed over the
//!   critical grid of point coordinates. Exact but O(N³) in the worst case;
//!   intended for validation at N ≤ a few thousand.
//! - [`l2_star_discrepancy`] — Warnock's closed-form L2 star discrepancy,
//!   O(N²) and smooth, used by the ablation benches.

/// Exact L∞ star discrepancy of a 2-D point set in the unit square.
///
/// The supremum over anchored boxes `[0,x)×[0,y)` is attained at corners
/// drawn from the grid of point coordinates (extended with 1.0), evaluating
/// each corner with both open and closed counts. Points must lie in
/// `[0, 1]²`; panics otherwise. Returns 0 for the empty set by convention.
///
/// ```
/// use decor_lds::{star_discrepancy, HaltonSequence};
/// use decor_lds::random::random_unit;
///
/// let halton = star_discrepancy(&HaltonSequence::new(2).take_unit2(128));
/// let random = star_discrepancy(&random_unit(128, 7));
/// assert!(halton < random, "the premise of DECOR's §3.2");
/// ```
pub fn star_discrepancy(points: &[(f64, f64)]) -> f64 {
    let n = points.len();
    if n == 0 {
        return 0.0;
    }
    for &(u, v) in points {
        assert!(
            (0.0..=1.0).contains(&u) && (0.0..=1.0).contains(&v),
            "star discrepancy requires unit-square points, got ({u}, {v})"
        );
    }
    // Candidate corner coordinates: every point coordinate and 1.0.
    let mut xs: Vec<f64> = points.iter().map(|&(u, _)| u).collect();
    xs.push(1.0);
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs.dedup();
    let mut ys: Vec<f64> = points.iter().map(|&(_, v)| v).collect();
    ys.push(1.0);
    ys.sort_by(|a, b| a.partial_cmp(b).unwrap());
    ys.dedup();

    let inv_n = 1.0 / n as f64;
    let mut worst: f64 = 0.0;
    // For each candidate x, bucket the points with u < x (strict) and
    // u <= x (closed), then sweep y candidates accumulating counts.
    for &x in &xs {
        // Points sorted by v for the sweep.
        let mut open_vs: Vec<f64> = Vec::new();
        let mut closed_vs: Vec<f64> = Vec::new();
        for &(u, v) in points {
            if u < x {
                open_vs.push(v);
            }
            if u <= x {
                closed_vs.push(v);
            }
        }
        open_vs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        closed_vs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut oi = 0usize; // count with v <  y among open_vs
        let mut ci = 0usize; // count with v <= y among closed_vs
        for &y in &ys {
            while oi < open_vs.len() && open_vs[oi] < y {
                oi += 1;
            }
            while ci < closed_vs.len() && closed_vs[ci] <= y {
                ci += 1;
            }
            let vol = x * y;
            // Open box [0,x)×[0,y): undershoot is maximized with strict
            // counts; overshoot with closed counts (boundary points can be
            // pushed just inside by an infinitesimal corner move).
            let under = vol - oi as f64 * inv_n;
            let over = ci as f64 * inv_n - vol;
            worst = worst.max(under).max(over);
        }
    }
    worst
}

/// Warnock's L2 star discrepancy (squared root) of a 2-D point set.
///
/// `T²(P) = 1/9 − (2/N) Σᵢ Πₖ (1 − xᵢₖ²)/2 + (1/N²) ΣᵢΣⱼ Πₖ (1 − max(xᵢₖ, xⱼₖ))`
///
/// Smooth and O(N²); used for large-N comparisons in the ablation benches
/// where the exact L∞ computation is too slow.
pub fn l2_star_discrepancy(points: &[(f64, f64)]) -> f64 {
    let n = points.len();
    if n == 0 {
        return 0.0;
    }
    let nf = n as f64;
    let mut s1 = 0.0;
    for &(u, v) in points {
        s1 += (1.0 - u * u) * (1.0 - v * v);
    }
    let mut s2 = 0.0;
    for &(u1, v1) in points {
        for &(u2, v2) in points {
            s2 += (1.0 - u1.max(u2)) * (1.0 - v1.max(v2));
        }
    }
    let t2 = 1.0 / 9.0 - s1 / (2.0 * nf) + s2 / (nf * nf);
    t2.max(0.0).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::halton::HaltonSequence;
    use crate::random::random_unit;

    #[test]
    fn empty_set_has_zero_discrepancy() {
        assert_eq!(star_discrepancy(&[]), 0.0);
        assert_eq!(l2_star_discrepancy(&[]), 0.0);
    }

    #[test]
    fn single_center_point() {
        // One point at (0.5, 0.5): worst anchored box is [0,1)x[0,1) up to
        // the box just excluding the point: D* = 3/4 (box (0.5,0.5) has
        // volume 0.25 and closed count 1 => |1 - 0.25| = 0.75).
        let d = star_discrepancy(&[(0.5, 0.5)]);
        assert!((d - 0.75).abs() < 1e-12, "d = {d}");
    }

    #[test]
    fn corner_point_discrepancy() {
        // A point at the origin: every box containing it counts 1.
        // Supremum: tiny box at origin, count 1, volume ~0 => D* = 1.
        let d = star_discrepancy(&[(0.0, 0.0)]);
        assert!((d - 1.0).abs() < 1e-12, "d = {d}");
    }

    #[test]
    fn uniform_grid_has_moderate_discrepancy() {
        // A 4x4 centered grid: D* is well below a random set's typical
        // value and above the theoretical minimum.
        let mut pts = Vec::new();
        for i in 0..4 {
            for j in 0..4 {
                pts.push(((i as f64 + 0.5) / 4.0, (j as f64 + 0.5) / 4.0));
            }
        }
        let d = star_discrepancy(&pts);
        assert!(d > 0.0 && d < 0.25, "d = {d}");
    }

    #[test]
    fn discrepancy_decreases_with_n_for_halton() {
        let h = HaltonSequence::new(2);
        let d64 = star_discrepancy(&h.take_unit2(64));
        let d512 = star_discrepancy(&h.take_unit2(512));
        assert!(d512 < d64, "expected decay: {d512} < {d64}");
    }

    #[test]
    fn l2_is_bounded_by_linf() {
        // The L2 average cannot exceed the supremum.
        let pts = HaltonSequence::new(2).take_unit2(200);
        assert!(l2_star_discrepancy(&pts) <= star_discrepancy(&pts) + 1e-12);
        let rnd = random_unit(200, 17);
        assert!(l2_star_discrepancy(&rnd) <= star_discrepancy(&rnd) + 1e-12);
    }

    #[test]
    fn l2_halton_beats_random_across_seeds() {
        let n = 256;
        let lh = l2_star_discrepancy(&HaltonSequence::new(2).take_unit2(n));
        for seed in 0..5 {
            let lr = l2_star_discrepancy(&random_unit(n, seed));
            assert!(lh < lr, "seed {seed}: halton {lh} vs random {lr}");
        }
    }

    #[test]
    #[should_panic(expected = "unit-square")]
    fn out_of_range_point_panics() {
        let _ = star_discrepancy(&[(1.5, 0.5)]);
    }

    #[test]
    fn warnock_matches_direct_integration_on_tiny_set() {
        // For one point p, T² = ∫ (1_{p∈[0,x)×[0,y)} − xy)² dx dy has the
        // closed form evaluated by Warnock; cross-check numerically.
        let p = (0.3, 0.7);
        let exact = l2_star_discrepancy(&[p]);
        let mut acc = 0.0;
        let m = 400;
        for i in 0..m {
            for j in 0..m {
                let x = (i as f64 + 0.5) / m as f64;
                let y = (j as f64 + 0.5) / m as f64;
                let count = if p.0 < x && p.1 < y { 1.0 } else { 0.0 };
                let d = count - x * y;
                acc += d * d;
            }
        }
        let numeric = (acc / (m * m) as f64).sqrt();
        assert!(
            (exact - numeric).abs() < 5e-3,
            "warnock {exact} vs numeric {numeric}"
        );
    }
}
