//! Halton sequences: the paper's primary field-approximation generator.

use crate::vdc::{radical_inverse, scrambled_radical_inverse};
use crate::PRIMES;
use decor_geom::{Aabb, Point};

/// A d-dimensional Halton sequence over the first `d` primes.
///
/// Dimension `j` of element `i` is the base-`p_j` radical inverse of
/// `leap * i + offset`. The plain paper configuration is
/// `HaltonSequence::new(2)`; `leaped` and `scrambled` are quality knobs
/// exposed for the ablation experiments.
#[derive(Clone, Debug)]
pub struct HaltonSequence {
    bases: Vec<u32>,
    leap: u64,
    offset: u64,
    scramble_seed: Option<u64>,
}

impl HaltonSequence {
    /// A plain Halton sequence of dimension `dim` (1 ≤ dim ≤ 16).
    pub fn new(dim: usize) -> Self {
        assert!(
            (1..=PRIMES.len()).contains(&dim),
            "supported dimensions are 1..={}",
            PRIMES.len()
        );
        HaltonSequence {
            bases: PRIMES[..dim].to_vec(),
            leap: 1,
            offset: 0,
            scramble_seed: None,
        }
    }

    /// Uses every `leap`-th element (leap ≥ 1) starting at `offset`.
    ///
    /// Leaping decorrelates subsequences handed to different consumers.
    pub fn leaped(mut self, leap: u64, offset: u64) -> Self {
        assert!(leap >= 1, "leap must be at least 1");
        self.leap = leap;
        self.offset = offset;
        self
    }

    /// Enables deterministic digit scrambling with the given seed.
    pub fn scrambled(mut self, seed: u64) -> Self {
        self.scramble_seed = Some(seed);
        self
    }

    /// Dimension of the sequence.
    pub fn dim(&self) -> usize {
        self.bases.len()
    }

    /// The `i`-th element (0-based) as a vector of unit-interval values.
    pub fn element(&self, i: u64) -> Vec<f64> {
        let idx = self.offset + self.leap * i;
        self.bases
            .iter()
            .map(|&b| match self.scramble_seed {
                // Salt the seed per dimension so axes are decorrelated.
                Some(s) => scrambled_radical_inverse(idx, b, s ^ (b as u64) << 32),
                None => radical_inverse(idx, b),
            })
            .collect()
    }

    /// First `n` elements of a 2-D sequence as `(u, v)` pairs.
    ///
    /// The sequence is started at index 1 (skipping the origin), the usual
    /// convention that avoids the all-zeros first point.
    pub fn take_unit2(&self, n: usize) -> Vec<(f64, f64)> {
        assert!(self.dim() >= 2, "take_unit2 requires dimension >= 2");
        (1..=n as u64)
            .map(|i| {
                let e = self.element(i);
                (e[0], e[1])
            })
            .collect()
    }
}

/// The paper's field approximation: `n` 2-D Halton points (bases 2, 3)
/// stretched over `field`. Fig. 4 shows exactly this with `n = 2000` on the
/// `100 x 100` field.
///
/// ```
/// use decor_geom::Aabb;
/// use decor_lds::halton_points;
///
/// let field = Aabb::square(100.0);
/// let pts = halton_points(2000, &field);
/// assert_eq!(pts.len(), 2000);
/// assert!(pts.iter().all(|p| field.contains(*p)));
/// // Low discrepancy: every quadrant holds ~500 points.
/// let q1 = pts.iter().filter(|p| p.x < 50.0 && p.y < 50.0).count();
/// assert!((480..=520).contains(&q1));
/// ```
pub fn halton_points(n: usize, field: &Aabb) -> Vec<Point> {
    HaltonSequence::new(2)
        .take_unit2(n)
        .into_iter()
        .map(|(u, v)| field.from_unit(u, v))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_elements_match_hand_computation() {
        let h = HaltonSequence::new(2);
        // Element 1: (1/2, 1/3); element 2: (1/4, 2/3); element 3: (3/4, 1/9).
        assert_eq!(h.element(1), vec![0.5, 1.0 / 3.0]);
        assert_eq!(h.element(2), vec![0.25, 2.0 / 3.0]);
        let e3 = h.element(3);
        assert!((e3[0] - 0.75).abs() < 1e-15);
        assert!((e3[1] - 1.0 / 9.0).abs() < 1e-15);
    }

    #[test]
    fn take_skips_the_origin() {
        let pts = HaltonSequence::new(2).take_unit2(10);
        assert_eq!(pts.len(), 10);
        assert!(pts.iter().all(|&(u, v)| u > 0.0 && v > 0.0));
    }

    #[test]
    fn points_are_distinct() {
        let pts = HaltonSequence::new(2).take_unit2(2000);
        let mut sorted = pts.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        sorted.dedup();
        assert_eq!(sorted.len(), 2000);
    }

    #[test]
    fn equidistribution_in_quadrants() {
        // 2000 Halton points must land ~500 per quadrant, much tighter
        // than random sampling noise.
        let pts = HaltonSequence::new(2).take_unit2(2000);
        let mut counts = [0usize; 4];
        for (u, v) in pts {
            let q = (u >= 0.5) as usize + 2 * ((v >= 0.5) as usize);
            counts[q] += 1;
        }
        for c in counts {
            assert!((480..=520).contains(&c), "quadrant count {c} far from 500");
        }
    }

    #[test]
    fn leaped_sequence_subsamples() {
        let base = HaltonSequence::new(2);
        let leap = HaltonSequence::new(2).leaped(3, 0);
        assert_eq!(leap.element(2), base.element(6));
    }

    #[test]
    fn scrambled_sequence_differs_but_fills_space() {
        let plain = HaltonSequence::new(2).take_unit2(256);
        let scr = HaltonSequence::new(2).scrambled(11).take_unit2(256);
        assert_ne!(plain, scr);
        let mut counts = [0usize; 4];
        for &(u, v) in &scr {
            let q = (u >= 0.5) as usize + 2 * ((v >= 0.5) as usize);
            counts[q] += 1;
        }
        for c in counts {
            assert!((40..=90).contains(&c), "scrambled quadrant count {c}");
        }
    }

    #[test]
    fn halton_points_cover_the_field() {
        let field = Aabb::square(100.0);
        let pts = halton_points(2000, &field);
        assert_eq!(pts.len(), 2000);
        assert!(pts.iter().all(|&p| field.contains(p)));
        // Spread check: bounding box of the points nearly fills the field.
        let max_x = pts.iter().map(|p| p.x).fold(0.0, f64::max);
        let max_y = pts.iter().map(|p| p.y).fold(0.0, f64::max);
        assert!(max_x > 95.0 && max_y > 95.0);
    }

    #[test]
    #[should_panic(expected = "supported dimensions")]
    fn dimension_zero_panics() {
        let _ = HaltonSequence::new(0);
    }

    #[test]
    #[should_panic(expected = "leap must be at least 1")]
    fn zero_leap_panics() {
        let _ = HaltonSequence::new(2).leaped(0, 0);
    }
}
