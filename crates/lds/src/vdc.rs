//! The van der Corput radical inverse — the building block of Halton and
//! Hammersley point sets.

/// Radical inverse of `i` in base `b`: mirror the base-`b` digits of `i`
/// around the radix point.
///
/// `radical_inverse(i, 2)` yields the classic van der Corput sequence
/// `0, 1/2, 1/4, 3/4, 1/8, 5/8, ...`. Results are always in `[0, 1)`.
///
/// Panics if `b < 2`.
pub fn radical_inverse(mut i: u64, b: u32) -> f64 {
    assert!(b >= 2, "radical inverse base must be at least 2");
    let b = b as u64;
    let inv_b = 1.0 / b as f64;
    let mut f = inv_b;
    let mut x = 0.0;
    while i > 0 {
        x += (i % b) as f64 * f;
        i /= b;
        f *= inv_b;
    }
    x
}

/// Digit-scrambled radical inverse.
///
/// Applies a fixed pseudo-random permutation (derived deterministically
/// from `seed` and the digit position) to every base-`b` digit before
/// mirroring. Scrambling breaks the correlation artifacts Halton exhibits
/// in higher dimensions while preserving low discrepancy; the experiments
/// expose it as an option (the paper uses plain Halton).
pub fn scrambled_radical_inverse(mut i: u64, b: u32, seed: u64) -> f64 {
    assert!(b >= 2, "radical inverse base must be at least 2");
    let bu = b as u64;
    let inv_b = 1.0 / bu as f64;
    let mut f = inv_b;
    let mut x = 0.0;
    let mut pos = 0u64;
    while i > 0 {
        let digit = i % bu;
        let perm = permute_digit(
            digit,
            bu,
            seed.wrapping_add(pos.wrapping_mul(0x9E3779B97F4A7C15)),
        );
        x += perm as f64 * f;
        i /= bu;
        f *= inv_b;
        pos += 1;
    }
    x
}

/// A bijective pseudo-random permutation of `0..b` applied to `d`,
/// implemented as a seeded Fisher–Yates rank lookup via splitmix64.
///
/// The permutation always fixes digit 0. Numbers have infinitely many
/// leading zero digits; a permutation moving 0 would have to be applied to
/// all of them, breaking both termination and injectivity across numbers
/// of different digit counts.
fn permute_digit(d: u64, b: u64, seed: u64) -> u64 {
    // For the small bases used here (b <= 53) an explicit permutation table
    // computed on the fly is cheap and exactly bijective.
    debug_assert!(d < b);
    let mut perm: [u64; 64] = [0; 64];
    for (v, slot) in perm.iter_mut().take(b as usize).enumerate() {
        *slot = v as u64;
    }
    let mut s = seed;
    // Shuffle only slots 1..b so perm[0] == 0.
    for k in (2..b as usize).rev() {
        s = splitmix64(s);
        let j = 1 + (s % k as u64) as usize;
        perm.swap(k, j);
    }
    perm[d as usize]
}

/// The splitmix64 mixing function — a tiny, high-quality 64-bit mixer used
/// throughout the workspace for deriving per-replica seeds.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base2_prefix_matches_known_sequence() {
        let expected = [0.0, 0.5, 0.25, 0.75, 0.125, 0.625, 0.375, 0.875];
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(radical_inverse(i as u64, 2), e, "index {i}");
        }
    }

    #[test]
    fn base3_prefix_matches_known_sequence() {
        let expected = [
            0.0,
            1.0 / 3.0,
            2.0 / 3.0,
            1.0 / 9.0,
            4.0 / 9.0,
            7.0 / 9.0,
            2.0 / 9.0,
            5.0 / 9.0,
            8.0 / 9.0,
        ];
        for (i, &e) in expected.iter().enumerate() {
            assert!(
                (radical_inverse(i as u64, 3) - e).abs() < 1e-15,
                "index {i}"
            );
        }
    }

    #[test]
    fn values_stay_in_unit_interval() {
        for b in [2u32, 3, 5, 7, 53] {
            for i in 0..2000u64 {
                let x = radical_inverse(i, b);
                assert!((0.0..1.0).contains(&x), "i={i} b={b} x={x}");
            }
        }
    }

    #[test]
    fn sequence_values_are_distinct() {
        let mut vals: Vec<f64> = (0..512).map(|i| radical_inverse(i, 2)).collect();
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        vals.dedup();
        assert_eq!(vals.len(), 512);
    }

    #[test]
    #[should_panic(expected = "base must be at least 2")]
    fn base_one_panics() {
        let _ = radical_inverse(5, 1);
    }

    #[test]
    fn scrambled_stays_in_unit_interval_and_is_deterministic() {
        for i in 0..500u64 {
            let a = scrambled_radical_inverse(i, 3, 42);
            let b = scrambled_radical_inverse(i, 3, 42);
            assert_eq!(a, b);
            assert!((0.0..1.0).contains(&a));
        }
    }

    #[test]
    fn scrambled_differs_from_plain_for_most_indices() {
        let diffs = (1..200u64)
            .filter(|&i| {
                (scrambled_radical_inverse(i, 5, 99) - radical_inverse(i, 5)).abs() > 1e-12
            })
            .count();
        assert!(diffs > 100, "only {diffs} of 199 indices changed");
    }

    #[test]
    fn scrambled_is_injective_on_prefix() {
        // A digit-wise bijection keeps distinct indices distinct (within
        // one digit-length class); check a full base^3 block.
        let mut vals: Vec<f64> = (0..125u64)
            .map(|i| scrambled_radical_inverse(i, 5, 7))
            .collect();
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let before = vals.len();
        vals.dedup_by(|a, b| (*a - *b).abs() < 1e-15);
        assert_eq!(vals.len(), before);
    }

    #[test]
    fn splitmix_is_deterministic_and_mixes() {
        assert_eq!(splitmix64(0), splitmix64(0));
        assert_ne!(splitmix64(0), splitmix64(1));
        assert_ne!(splitmix64(1), splitmix64(2));
    }
}
