//! Low-discrepancy point sets for area approximation.
//!
//! DECOR replaces the continuous monitored area with a discrete set of
//! points (§3.2 of the paper): a point set of low *discrepancy* approximates
//! area measures far better than a uniform random sample of the same
//! cardinality. The paper proposes the Halton and Hammersley generators,
//! whose star discrepancies are `O(log^d N / N)` and `O(log^{d-1} N / N)`
//! respectively, versus `O(sqrt(log log N / N))` for random points.
//!
//! Provided here:
//! - [`vdc`] — the van der Corput radical inverse (any base), plus a
//!   deterministic digit-scrambled variant;
//! - [`halton`] — d-dimensional Halton sequences over the first primes,
//!   with leaping and scrambling options;
//! - [`hammersley`] — the N-point Hammersley set;
//! - [`sobol`] — a 2-D Sobol sequence (extension: not in the paper, used in
//!   the ablation benches);
//! - [`random`] — uniform and jittered random point sets (baselines);
//! - [`discrepancy`] — exact star discrepancy (small N) and Warnock's
//!   L2-star discrepancy, used to validate the paper's premise.
//!
//! Field-mapping helpers ([`halton_points`], [`hammersley_points`],
//! [`random_points`]) stretch unit-square samples over an arbitrary
//! [`decor_geom::Aabb`] field, which is how every experiment builds its
//! 2000-point approximation of the `100 x 100` area.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod discrepancy;
pub mod faure;
pub mod halton;
pub mod hammersley;
pub mod random;
pub mod sobol;
pub mod vdc;

pub use discrepancy::{l2_star_discrepancy, star_discrepancy};
pub use faure::{faure2d, faure_unit};
pub use halton::{halton_points, HaltonSequence};
pub use hammersley::{hammersley_points, hammersley_unit};
pub use random::{jittered_points, random_points, random_points_into};
pub use sobol::Sobol2D;
pub use vdc::{radical_inverse, scrambled_radical_inverse};

/// The first 16 primes, used as Halton bases.
pub const PRIMES: [u32; 16] = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53];

/// How a point set approximating the field is generated.
///
/// The experiment harness uses this to switch the approximation backend
/// (Fig. 4 uses Halton; the paper notes Hammersley gives similar results;
/// random is the ablation baseline).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PointSetKind {
    /// Halton sequence (bases 2 and 3).
    Halton,
    /// Hammersley set (base 2 + i/N).
    Hammersley,
    /// 2-D Sobol sequence.
    Sobol,
    /// 2-D Faure sequence (base 2).
    Faure,
    /// Uniform random points (seeded).
    Random(u64),
    /// Jittered grid (seeded): one point per cell of a √N×√N grid.
    Jittered(u64),
}

impl PointSetKind {
    /// Generates `n` unit-square points of this kind.
    pub fn unit_points(&self, n: usize) -> Vec<(f64, f64)> {
        match *self {
            PointSetKind::Halton => HaltonSequence::new(2).take_unit2(n),
            PointSetKind::Hammersley => hammersley_unit(n),
            PointSetKind::Sobol => Sobol2D::new().take(n),
            PointSetKind::Faure => faure_unit(n),
            PointSetKind::Random(seed) => random::random_unit(n, seed),
            PointSetKind::Jittered(seed) => random::jittered_unit(n, seed),
        }
    }

    /// Generates `n` points of this kind mapped over `field`.
    pub fn points(&self, n: usize, field: &decor_geom::Aabb) -> Vec<decor_geom::Point> {
        self.unit_points(n)
            .into_iter()
            .map(|(u, v)| field.from_unit(u, v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decor_geom::Aabb;

    #[test]
    fn every_kind_generates_requested_count_inside_field() {
        let field = Aabb::square(100.0);
        for kind in [
            PointSetKind::Halton,
            PointSetKind::Hammersley,
            PointSetKind::Sobol,
            PointSetKind::Faure,
            PointSetKind::Random(7),
            PointSetKind::Jittered(7),
        ] {
            let pts = kind.points(500, &field);
            assert_eq!(pts.len(), 500, "{kind:?}");
            assert!(pts.iter().all(|p| field.contains(*p)), "{kind:?}");
        }
    }

    #[test]
    fn halton_beats_random_on_star_discrepancy() {
        // The premise of §3.2: for equal cardinality the LDS approximates
        // the area better. Star discrepancy is the formal statement.
        let n = 128;
        let h = PointSetKind::Halton.unit_points(n);
        let r = PointSetKind::Random(3).unit_points(n);
        let dh = star_discrepancy(&h);
        let dr = star_discrepancy(&r);
        assert!(
            dh < dr,
            "halton discrepancy {dh} should beat random {dr} at n={n}"
        );
    }

    #[test]
    fn hammersley_beats_halton_slightly() {
        // O(log N / N) vs O(log² N / N): Hammersley should be no worse.
        let n = 256;
        let h = star_discrepancy(&PointSetKind::Halton.unit_points(n));
        let hm = star_discrepancy(&PointSetKind::Hammersley.unit_points(n));
        assert!(hm <= h * 1.25, "hammersley {hm} vs halton {h}");
    }
}
