//! Cross-crate guarantees a k-covered deployment buys, checked through
//! the facade API: breach-path bounds, efficiency bounds, diagnostics
//! consistency, and Voronoi load balance.

use decor::core::bounds::coverage_lower_bound;
use decor::core::{DeploymentDiagnostics, SchemeKind};
use decor::exp::common::{deploy, ExpParams};
use decor::geom::{best_support_path, maximal_breach_path, Point};

fn sensors_of(map: &decor::core::CoverageMap) -> Vec<Point> {
    map.active_sensors().iter().map(|&(_, p)| p).collect()
}

/// The intruder-side guarantee: if every approximation point is covered,
/// any crossing passes within `rs + gap` of a sensor, where `gap` bounds
/// the spacing between approximation points.
#[test]
fn k_coverage_bounds_the_breach_distance() {
    let params = ExpParams::quick();
    let gap = (params.field_side * params.field_side / params.n_points as f64).sqrt();
    for scheme in [
        SchemeKind::Centralized,
        SchemeKind::GridBig,
        SchemeKind::VoronoiSmall,
    ] {
        let (map, out, cfg) = deploy(&params, scheme, 1, 13);
        assert!(out.fully_covered);
        let breach = maximal_breach_path(&sensors_of(&map), map.field(), 96);
        assert!(
            breach.distance <= cfg.rs + gap,
            "{}: breach {:.2} exceeds rs + gap = {:.2}",
            scheme.label(),
            breach.distance,
            cfg.rs + gap
        );
    }
}

/// The escort-side counterpart: a covered field always offers a crossing
/// that stays within `rs + gap` of some sensor.
#[test]
fn k_coverage_bounds_the_support_distance() {
    let params = ExpParams::quick();
    let gap = (params.field_side * params.field_side / params.n_points as f64).sqrt();
    let (map, out, cfg) = deploy(&params, SchemeKind::Centralized, 1, 17);
    assert!(out.fully_covered);
    let support = best_support_path(&sensors_of(&map), map.field(), 96);
    assert!(
        support.distance <= cfg.rs + gap,
        "support {:.2} exceeds rs + gap = {:.2}",
        support.distance,
        cfg.rs + gap
    );
}

/// No algorithm beats the disc-packing lower bound, and all stay within
/// a small constant factor of it (except random, which is the point of
/// the comparison).
#[test]
fn efficiency_stays_between_bound_and_constant_factor() {
    let params = ExpParams::quick();
    for scheme in SchemeKind::ALL {
        let (map, out, cfg) = deploy(&params, scheme, 2, 19);
        assert!(out.fully_covered);
        let lb = coverage_lower_bound(map.field(), cfg.rs, cfg.k);
        let n = map.n_active_sensors();
        assert!(
            n >= lb,
            "{}: {n} beats the lower bound {lb}?!",
            scheme.label()
        );
        if scheme != SchemeKind::Random {
            assert!(
                n < 3 * lb,
                "{}: {n} vs lower bound {lb} — too wasteful",
                scheme.label()
            );
        }
    }
}

/// Diagnostics are internally consistent for every scheme's output.
#[test]
fn diagnostics_are_consistent_across_schemes() {
    let params = ExpParams::quick();
    for scheme in SchemeKind::ALL {
        let (mut map, _, cfg) = deploy(&params, scheme, 2, 23);
        let d = DeploymentDiagnostics::analyze(&mut map, cfg.k, cfg.rs);
        assert_eq!(d.fraction_k_covered, 1.0, "{}", scheme.label());
        assert!(d.min_coverage >= cfg.k, "{}", scheme.label());
        assert!(
            d.min_coverage as f64 <= d.mean_coverage && d.mean_coverage <= d.max_coverage as f64,
            "{}",
            scheme.label()
        );
        assert!(d.redundant < d.sensors, "{}", scheme.label());
        assert!(d.cell_area_cv >= 0.0, "{}", scheme.label());
        assert!(d.mean_nearest_sensor_dist > 0.0, "{}", scheme.label());
        // Greedy-placed deployments space sensors on the order of rs.
        if scheme != SchemeKind::Random {
            assert!(
                d.mean_nearest_sensor_dist < 2.0 * cfg.rs,
                "{}: nn-dist {:.2}",
                scheme.label(),
                d.mean_nearest_sensor_dist
            );
        }
    }
}

/// A disaster strictly opens the breach; restoration closes it again.
#[test]
fn breach_opens_and_closes_with_damage_and_repair() {
    use decor::geom::Disk;
    let params = ExpParams::quick();
    let (mut map, _, cfg) = deploy(&params, SchemeKind::VoronoiBig, 1, 29);
    let before = maximal_breach_path(&sensors_of(&map), map.field(), 96).distance;
    // A fire front across the middle (three discs).
    for cx in [15.0, 50.0, 85.0] {
        let disk = Disk::new(Point::new(cx, 50.0), 20.0);
        let victims: Vec<usize> = map
            .active_sensors()
            .iter()
            .filter(|&&(_, pos)| disk.contains(pos))
            .map(|&(sid, _)| sid)
            .collect();
        for sid in victims {
            map.deactivate_sensor(sid);
        }
    }
    let opened = maximal_breach_path(&sensors_of(&map), map.field(), 96).distance;
    assert!(
        opened > before + 2.0,
        "corridor must open: {before} -> {opened}"
    );
    let placer = params.placer(SchemeKind::VoronoiBig, 31);
    let out = placer.place(&mut map, &cfg);
    assert!(out.fully_covered);
    let closed = maximal_breach_path(&sensors_of(&map), map.field(), 96).distance;
    assert!(
        closed <= before + 1.0,
        "restoration must close it: {closed}"
    );
}
