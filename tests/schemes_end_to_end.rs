//! End-to-end integration: every placement algorithm, from a damaged
//! random field to verified full k-coverage, across the facade crate's
//! public API.

use decor::core::{redundancy::redundant_mask, CoverageMap, DeploymentConfig, SchemeKind};
use decor::exp::common::{deploy, ExpParams};
use decor::geom::Aabb;
use decor::lds::{halton_points, random_points};

fn quick() -> ExpParams {
    ExpParams::quick()
}

/// The paper's six schemes plus the exact-geometry hole healer (kept out
/// of `SchemeKind::ALL` so figure legends stay six curves, but held to
/// the same end-to-end guarantees here).
fn all_schemes() -> impl Iterator<Item = SchemeKind> {
    SchemeKind::ALL.into_iter().chain([SchemeKind::Holes])
}

#[test]
fn every_scheme_restores_coverage_from_partial_deployment() {
    let params = quick();
    for scheme in all_schemes() {
        let (map, out, cfg) = deploy(&params, scheme, 2, 11);
        assert!(out.fully_covered, "{} did not finish", scheme.label());
        assert_eq!(map.count_below(cfg.k), 0, "{}", scheme.label());
        assert!(map.min_coverage() >= cfg.k, "{}", scheme.label());
        map.clone().verify_consistency();
    }
}

#[test]
fn every_scheme_survives_an_empty_initial_field() {
    let params = quick();
    let cfg = DeploymentConfig::with_k(1);
    for scheme in all_schemes() {
        let field = params.field();
        let mut map = CoverageMap::new(halton_points(params.n_points, &field), &field, &cfg);
        let out = params.placer(scheme, 5).place(&mut map, &cfg);
        assert!(out.fully_covered, "{} from empty field", scheme.label());
    }
}

#[test]
fn placement_order_and_trace_are_consistent() {
    let params = quick();
    for scheme in all_schemes() {
        let (_, out, _) = deploy(&params, scheme, 1, 3);
        // Final trace entry must report the final sensor count.
        let last = out.trace.last().expect("non-empty trace");
        assert_eq!(
            last.total_sensors,
            out.total_sensors(),
            "{}",
            scheme.label()
        );
        assert_eq!(last.fraction_k_covered, 1.0, "{}", scheme.label());
        // Traces never report more sensors than exist.
        for t in &out.trace {
            assert!(t.total_sensors <= out.total_sensors());
        }
    }
}

#[test]
fn redundancy_mask_is_sound_for_every_scheme() {
    let params = quick();
    for scheme in all_schemes() {
        let (mut map, _, cfg) = deploy(&params, scheme, 2, 17);
        let mask = redundant_mask(&mut map, cfg.k);
        // Removing all redundant sensors must preserve k-coverage.
        for (sid, &r) in mask.iter().enumerate() {
            if r {
                map.deactivate_sensor(sid);
            }
        }
        assert_eq!(map.count_below(cfg.k), 0, "{}", scheme.label());
    }
}

#[test]
fn distributed_schemes_pay_messages_centralized_does_not() {
    let params = quick();
    for scheme in all_schemes() {
        let (_, out, _) = deploy(&params, scheme, 2, 23);
        if scheme.is_decor() {
            assert!(
                out.messages.protocol_total > 0,
                "{} must exchange messages",
                scheme.label()
            );
        } else {
            assert_eq!(
                out.messages.protocol_total,
                0,
                "{} must not exchange messages",
                scheme.label()
            );
        }
    }
}

#[test]
fn initial_sensors_are_counted_not_replaced() {
    let params = quick();
    let cfg = DeploymentConfig::with_k(1);
    let field = params.field();
    let mut map = CoverageMap::new(halton_points(params.n_points, &field), &field, &cfg);
    for p in random_points(40, &field, 9) {
        map.add_sensor(p, cfg.rs);
    }
    let before = map.n_active_sensors();
    let out = params
        .placer(SchemeKind::VoronoiSmall, 1)
        .place(&mut map, &cfg);
    assert_eq!(out.initial_sensors, before);
    assert_eq!(map.n_active_sensors(), before + out.placed.len());
}

#[test]
fn higher_k_never_needs_fewer_nodes() {
    let params = quick();
    for scheme in [
        SchemeKind::Centralized,
        SchemeKind::GridBig,
        SchemeKind::VoronoiSmall,
    ] {
        let (_, out1, _) = deploy(&params, scheme, 1, 31);
        let (_, out2, _) = deploy(&params, scheme, 2, 31);
        assert!(
            out2.total_sensors() >= out1.total_sensors(),
            "{}: k=2 ({}) vs k=1 ({})",
            scheme.label(),
            out2.total_sensors(),
            out1.total_sensors()
        );
    }
}

#[test]
fn field_geometry_is_respected_by_all_schemes() {
    let params = quick();
    let field = Aabb::square(params.field_side);
    for scheme in all_schemes() {
        let (_, out, _) = deploy(&params, scheme, 1, 37);
        for p in &out.placed {
            assert!(field.contains(*p), "{} placed {p} outside", scheme.label());
        }
    }
}
