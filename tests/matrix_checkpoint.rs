//! Snapshot/restore: a matrix checkpointed mid-flight and resumed in a
//! "fresh process" must produce the exact result set — traces included —
//! of an uninterrupted run.
//!
//! The journal is built the way `decor-serve` builds it: a header line
//! pinning the matrix fingerprint, then one `RunResult` JSON line
//! appended from the runner's `on_result` hook as each run completes.
//! The "process death" is `stop_after`; the "fresh process" is a new
//! runner fed only the journal text read back from disk.

use decor::core::SchemeKind;
use decor::exp::common::ExpParams;
use decor::exp::runner::{CheckpointJournal, MatrixRunner, RunnerHooks};
use decor::exp::scenario::{RunResult, ScenarioMatrix, ScenarioSpec, Workload};
use std::sync::Mutex;

/// A small mixed matrix: traced deploys and an untraced failure probe,
/// so the journal has to round-trip both result shapes.
fn checkpoint_matrix() -> ScenarioMatrix {
    let params = ExpParams::quick();
    let mut deploy = ScenarioSpec::from_params(&params, SchemeKind::GridSmall, 1);
    deploy.name = "ckpt-deploy".into();
    deploy.replicas = 3;
    deploy.trace = true;
    let mut probe = ScenarioSpec::from_params(&params, SchemeKind::VoronoiSmall, 2);
    probe.name = "ckpt-probe".into();
    probe.workload = Workload::FailureProbe;
    probe.loss_pct = 20;
    probe.replicas = 2;
    ScenarioMatrix::new(vec![deploy, probe]).unwrap()
}

#[test]
fn mid_flight_checkpoint_resumes_bit_identically() {
    let m = checkpoint_matrix();
    let reference = MatrixRunner::new(2).run(&m);
    assert!(reference.complete());

    // Phase 1: run with a journal hook, die after 2 runs.
    let journal = Mutex::new(format!("{}\n", CheckpointJournal::header(&m)));
    let append = |r: &RunResult| {
        let mut j = journal.lock().unwrap();
        j.push_str(&r.to_json());
        j.push('\n');
    };
    let partial = MatrixRunner::new(2).run_with(
        &m,
        RunnerHooks {
            on_result: Some(&append),
            stop_after: Some(2),
            ..RunnerHooks::default()
        },
    );
    assert_eq!(partial.executed, 2);
    assert!(!partial.complete(), "the process died mid-flight");

    // The journal crosses a process boundary: write it out, read it back.
    let path = std::env::temp_dir().join("decor_matrix_checkpoint_test.journal");
    std::fs::write(&path, journal.into_inner().unwrap()).unwrap();
    let restored_text = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();

    // Phase 2: a fresh runner restores the journal and finishes.
    let skip = CheckpointJournal::load(&restored_text, &m).unwrap();
    assert_eq!(skip.len(), 2, "both journaled runs restore");
    let resumed = MatrixRunner::new(2).run_with(
        &m,
        RunnerHooks {
            skip,
            ..RunnerHooks::default()
        },
    );
    assert_eq!(resumed.skipped, 2);
    assert_eq!(resumed.executed, m.n_runs() - 2);
    assert!(resumed.complete());

    // Bit-identical to the uninterrupted run — including the traces,
    // which ride inside the fingerprint lines.
    assert_eq!(
        resumed.fingerprint_lines(),
        reference.fingerprint_lines(),
        "resumed matrix must equal the uninterrupted run"
    );
    let traced: Vec<&RunResult> = resumed.results[..3]
        .iter()
        .map(|r| r.as_ref().unwrap())
        .collect();
    for (i, r) in traced.iter().enumerate() {
        let want = reference.results[i].as_ref().unwrap();
        assert_eq!(r.trace, want.trace, "trace of replica {i} must survive");
        assert!(r.trace.as_ref().is_some_and(|t| !t.is_empty()));
    }
}

#[test]
fn a_journal_holding_every_run_executes_nothing() {
    let m = checkpoint_matrix();
    let mut journal = format!("{}\n", CheckpointJournal::header(&m));
    let full = MatrixRunner::new(1).run(&m);
    for r in full.results.iter().flatten() {
        journal.push_str(&r.to_json());
        journal.push('\n');
    }
    let skip = CheckpointJournal::load(&journal, &m).unwrap();
    let resumed = MatrixRunner::new(4).run_with(
        &m,
        RunnerHooks {
            skip,
            ..RunnerHooks::default()
        },
    );
    assert_eq!(resumed.executed, 0);
    assert_eq!(resumed.skipped, m.n_runs());
    assert!(resumed.complete());
    assert_eq!(resumed.fingerprint_lines(), full.fingerprint_lines());
}

#[test]
fn a_crash_truncated_journal_still_resumes_correctly() {
    let m = checkpoint_matrix();
    let full = MatrixRunner::new(1).run(&m);
    let lines: Vec<String> = full.results.iter().flatten().map(|r| r.to_json()).collect();
    // Two intact lines, then a write cut off by the crash.
    let journal = format!(
        "{}\n{}\n{}\n{}",
        CheckpointJournal::header(&m),
        lines[0],
        lines[1],
        &lines[2][..lines[2].len() / 3]
    );
    let skip = CheckpointJournal::load(&journal, &m).unwrap();
    assert_eq!(skip.len(), 2, "the torn line is dropped, not fatal");
    let resumed = MatrixRunner::new(2).run_with(
        &m,
        RunnerHooks {
            skip,
            ..RunnerHooks::default()
        },
    );
    assert!(resumed.complete());
    assert_eq!(resumed.fingerprint_lines(), full.fingerprint_lines());
}

#[test]
fn resuming_against_an_edited_matrix_is_refused() {
    let m = checkpoint_matrix();
    let journal = format!("{}\n", CheckpointJournal::header(&m));
    let mut cells = m.cells().to_vec();
    cells[0].k = 2; // someone edited the spec file between runs
    let edited = ScenarioMatrix::new(cells).unwrap();
    let err = CheckpointJournal::load(&journal, &edited).unwrap_err();
    assert!(err.contains("fingerprint mismatch"), "{err}");
}
