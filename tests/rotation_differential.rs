//! Differential tier — distributed shift agreement vs the centralized
//! partition.
//!
//! [`decor::core::agree_shifts`] disseminates assignments in-network
//! (election, BFS tree, reliable transport, retries); the schedule it
//! lands on must be **bit-identical** to the centralized
//! [`decor::net::SleepScheduler::shifts`] output — on lossless and lossy
//! links, and regardless of how many worker threads run the replicas.

use decor::core::parallel::run_replicas_with_threads;
use decor::core::{agree_shifts, LinkConfig, SchemeKind};
use decor::exp::common::{deploy_with, ExpParams};
use decor::geom::Point;
use decor::net::{Network, NodeId, RotationConfig, SleepScheduler};

/// Deploys a k-covered field and mirrors it into a network.
fn deployed_net(k: u32, seed: u64) -> (Network, Vec<Point>) {
    let params = ExpParams::quick();
    let (map, _, cfg) = deploy_with(&params, SchemeKind::Centralized, k, seed, |_| {});
    let mut net = Network::new(*map.field());
    for (_, pos) in map.active_sensors() {
        net.add_node(pos, cfg.rs, cfg.rc);
    }
    let points = map.points().to_vec();
    (net, points)
}

/// One replica: the distributed agreement's shifts at the given loss.
fn agreed_shifts(k: u32, seed: u64, loss: Option<f64>) -> Vec<Vec<NodeId>> {
    let (mut net, points) = deployed_net(k, seed);
    let link = match loss {
        Some(rate) => LinkConfig::lossy(rate, seed ^ 0x1055),
        None => LinkConfig::default(),
    };
    link.apply(&mut net);
    let rot = RotationConfig::default();
    let agreement = agree_shifts(&mut net, &points, &rot, &link, seed);
    agreement.schedule.shifts().to_vec()
}

#[test]
fn agreement_matches_centralized_partition_lossless_and_lossy() {
    for seed in [3u64, 9] {
        let (net, points) = deployed_net(3, seed);
        let want = SleepScheduler::new(1).shifts(&net, &points);
        assert!(want.len() > 1, "k=3 deployment must split (seed {seed})");
        for loss in [None, Some(0.2)] {
            let got = agreed_shifts(3, seed, loss);
            assert_eq!(
                got, want,
                "distributed agreement drifted from the centralized \
                 partition (seed {seed}, loss {loss:?})"
            );
        }
    }
}

#[test]
fn agreement_is_bit_identical_across_worker_counts() {
    let run_with = |threads: usize| -> Vec<Vec<Vec<NodeId>>> {
        run_replicas_with_threads(4, 0xD1FF, threads, |i, seed| {
            let loss = if i % 2 == 0 { None } else { Some(0.2) };
            agreed_shifts(3, seed, loss)
        })
    };
    let one = run_with(1);
    let two = run_with(2);
    let eight = run_with(8);
    assert_eq!(one, two, "2 workers diverged from sequential");
    assert_eq!(one, eight, "8 workers diverged from sequential");
}

#[test]
fn agreement_pays_for_its_messages() {
    let (mut net, points) = deployed_net(3, 5);
    let link = LinkConfig::default();
    let rot = RotationConfig::default();
    let agreement = agree_shifts(&mut net, &points, &rot, &link, 0);
    assert!(agreement.schedule.n_shifts() > 1);
    assert!(agreement.assignments_sent > 0);
    assert_eq!(agreement.gave_up, 0, "lossless must reach every member");
    assert!(
        net.stats.total_sent > 0 && net.stats.protocol_sent > 0,
        "agreement traffic must be charged to the energy accounting"
    );
}
