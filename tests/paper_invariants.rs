//! Integration tests for the paper's stated properties (§2):
//! the coverage/connectivity corollary, the reliability formula, and the
//! failure-restoration loop closing end to end.

use decor::core::restore::fail_and_restore;
use decor::core::{reliability::coverage_reliability, CoverageMap, DeploymentConfig, SchemeKind};
use decor::exp::common::{deploy, ExpParams};
use decor::geom::{Point, UnitDiskGraph};
use decor::lds::halton_points;
use decor::net::{FailurePlan, HeartbeatConfig};

/// §2: "a necessary and sufficient condition to guarantee network
/// connectivity when full coverage is achieved is rc >= 2·rs"; with
/// k-coverage the network is k-connected. The continuum proof is
/// equality-tight: two sensors covering *adjacent area* are within
/// `2·rs`. Our coverage is certified on a discrete point set, so adjacent
/// covered points can be one inter-point gap apart; the corollary then
/// holds at `rc = 2·rs + gap`. We check it with that discretization slack
/// (quick mode: 500 points on a 100×100 field → mean spacing ≈ 4.5).
#[test]
fn k_coverage_with_double_radius_implies_k_connectivity() {
    let params = ExpParams::quick();
    let gap = (params.field_side * params.field_side / params.n_points as f64).sqrt();
    for (scheme, k) in [
        (SchemeKind::Centralized, 1u32),
        (SchemeKind::Centralized, 2),
        (SchemeKind::GridSmall, 2),
        (SchemeKind::VoronoiSmall, 2),
    ] {
        let (map, out, cfg) = deploy(&params, scheme, k, 41);
        assert!(out.fully_covered);
        assert!(cfg.rc >= 2.0 * cfg.rs, "precondition of the corollary");
        let rc_eff = 2.0 * cfg.rs + gap;
        let positions: Vec<Point> = map.active_sensors().iter().map(|&(_, p)| p).collect();
        let graph = UnitDiskGraph::build(&positions, rc_eff);
        assert!(
            graph.is_connected(),
            "{} at k={k}: coverage without connectivity",
            scheme.label()
        );
        assert!(
            graph.vertex_connectivity_at_least(k as usize),
            "{} at k={k}: not {k}-connected",
            scheme.label()
        );
    }
}

/// §2.1: the measured survival rate of points under i.i.d. failures must
/// track `1 − q^k` for a deployment with coverage exactly ≥ k.
#[test]
fn iid_failure_survival_tracks_reliability_formula() {
    let params = ExpParams::quick();
    let k = 3u32;
    let q = 0.3;
    let (map, _, cfg) = deploy(&params, SchemeKind::Centralized, k, 43);
    // Empirical: fail each sensor iid with prob q, measure 1-coverage.
    let mut survived = Vec::new();
    for trial in 0..10u64 {
        let mut m = map.clone();
        let sensors = m.active_sensors();
        let mut net = decor::net::Network::new(*m.field());
        for &(_, pos) in &sensors {
            net.add_node(pos, cfg.rs, cfg.rc);
        }
        let victims = FailurePlan::Iid {
            q,
            seed: 1000 + trial,
        }
        .victims(&net);
        for &v in &victims {
            m.deactivate_sensor(sensors[v].0);
        }
        survived.push(m.fraction_k_covered(1));
    }
    let mean = survived.iter().sum::<f64>() / survived.len() as f64;
    let predicted = coverage_reliability(k, q);
    // Points are covered by >= k sensors (often more), so the measured
    // survival must be at least the k-sensor prediction, and not wildly
    // above the k+3 prediction.
    assert!(
        mean >= predicted - 0.05,
        "measured {mean} below prediction {predicted}"
    );
    assert!(mean <= 1.0);
}

/// The full loop from the abstract: damage a network, detect, restore —
/// closing with verified k-coverage, for a distributed scheme end to end.
#[test]
fn damage_detect_restore_loop_closes() {
    let params = ExpParams::quick();
    let (mut map, _, cfg) = deploy(&params, SchemeKind::VoronoiSmall, 2, 47);
    let plan = FailurePlan::Area {
        disk: decor::geom::Disk::new(Point::new(50.0, 50.0), 20.0),
    };
    let hb = HeartbeatConfig {
        period: 500,
        timeout_periods: 3,
        seed: 7,
    };
    let placer = params.placer(SchemeKind::VoronoiSmall, 48);
    let report = fail_and_restore(&mut map, placer.as_ref(), &cfg, &plan, Some(hb));
    assert!(report.victims > 0);
    assert!(report.coverage_after_failure < 1.0);
    assert_eq!(report.coverage_after_restore, 1.0);
    assert!(report.extra_nodes > 0);
    // Detection found at least the victims that had surviving neighbors.
    assert!(report.detected <= report.victims);
}

/// Deploying for a larger k materially improves the survivable failure
/// fraction (the mechanism behind Figs. 11–12), measured across schemes.
#[test]
fn k_buys_fault_tolerance_across_schemes() {
    let params = ExpParams::quick();
    for scheme in [SchemeKind::GridBig, SchemeKind::Centralized] {
        let survive = |k: u32| {
            let (map, _, cfg) = deploy(&params, scheme, k, 53);
            let mut m = map.clone();
            let sensors = m.active_sensors();
            let mut net = decor::net::Network::new(*m.field());
            for &(_, pos) in &sensors {
                net.add_node(pos, cfg.rs, cfg.rc);
            }
            let victims = FailurePlan::Fraction {
                frac: 0.3,
                seed: 99,
            }
            .victims(&net);
            for &v in &victims {
                m.deactivate_sensor(sensors[v].0);
            }
            m.fraction_k_covered(1)
        };
        let s1 = survive(1);
        let s2 = survive(2);
        assert!(
            s2 >= s1,
            "{}: k=2 ({s2}) must be at least as tolerant as k=1 ({s1})",
            scheme.label()
        );
        assert!(
            s2 > 0.9,
            "{}: k=2 should keep >90% 1-coverage",
            scheme.label()
        );
    }
}

/// Running a placer on an already k-covered map is a no-op for every
/// algorithm with accurate coverage knowledge (centralized, random, grid —
/// whose leaders know their own cell's true coverage). The Voronoi
/// variants are the deliberate exception: a sensor covering a point can
/// sit outside the viewing node's `rc`, so the node *believes* the point
/// is under-covered and places a redundant sensor — exactly the blind-
/// annulus mechanism behind Fig. 9. We assert the no-op for the accurate
/// schemes and bound the over-placement for Voronoi.
#[test]
fn placers_are_idempotent_on_covered_maps() {
    let params = ExpParams::quick();
    let cfg = DeploymentConfig::with_k(2);
    let field = params.field();
    let mut map = CoverageMap::new(halton_points(params.n_points, &field), &field, &cfg);
    // Cover via centralized first.
    params
        .placer(SchemeKind::Centralized, 1)
        .place(&mut map, &cfg);
    let covered_sensors = map.n_active_sensors();
    for scheme in [
        SchemeKind::Centralized,
        SchemeKind::Random,
        SchemeKind::GridSmall,
        SchemeKind::GridBig,
    ] {
        let before = map.n_active_sensors();
        let out = params.placer(scheme, 2).place(&mut map, &cfg);
        assert!(
            out.placed.is_empty(),
            "{} placed on covered map",
            scheme.label()
        );
        assert_eq!(map.n_active_sensors(), before);
    }
    for scheme in [SchemeKind::VoronoiSmall, SchemeKind::VoronoiBig] {
        let mut m = map.clone();
        let out = params.placer(scheme, 2).place(&mut m, &cfg);
        assert!(
            out.placed.len() <= covered_sensors / 5,
            "{} over-placed wildly: {} extra on a covered {}-sensor map",
            scheme.label(),
            out.placed.len(),
            covered_sensors
        );
    }
    // Bigger rc sees more, so it over-places no more than small rc.
    let mut m_small = map.clone();
    let small = params
        .placer(SchemeKind::VoronoiSmall, 2)
        .place(&mut m_small, &cfg)
        .placed
        .len();
    let mut m_big = map.clone();
    let big = params
        .placer(SchemeKind::VoronoiBig, 2)
        .place(&mut m_big, &cfg)
        .placed
        .len();
    assert!(
        big <= small,
        "big rc ({big}) must not exceed small rc ({small})"
    );
}
