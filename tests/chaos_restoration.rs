//! Chaos tier: fault-plan fuzzing over the distributed placers.
//!
//! Random bounded [`FaultPlan`]s (crashes — including leaders mid-round —
//! partitions, blackholed links, latency spikes, energy drains) are
//! injected into grid and Voronoi restoration runs with the invariant
//! checker attached. Every plan must leave the checker green and the
//! field fully k-covered once the faults cease.
//!
//! The vendored proptest shim cannot shrink, so a failing plan is
//! delta-debugged here (`decor::net::shrink_plan`) down to a locally
//! minimal script, which the panic message prints together with a
//! `decor-cli` replay command. See tests/README.md ("The chaos tier")
//! for the workflow.

use decor::core::{
    CoverageMap, DeploymentConfig, GridDecor, HoleHealing, InvariantChecker, PlacementOutcome,
    Placer, VoronoiDecor,
};
use decor::geom::Aabb;
use decor::lds::{halton_points, random_points};
use decor::net::{shrink_plan, FaultPlan};
use decor::trace::{first_divergence, TraceHandle};
use proptest::prelude::*;

/// The golden-trace scenario, scaled up to eight initial sensors so the
/// generator's crash budget (half the population) can kill four of them.
const FIELD_SIDE: f64 = 30.0;
const N_POINTS: usize = 150;
const INITIAL_SENSORS: usize = 8;
const SEED: u64 = 11;
/// Generated fault plans land in `[0, HORIZON)` transport ticks with
/// cleanup at `HORIZON`; the placers force remaining batches once the
/// protocol goes quiet, so any horizon terminates.
const HORIZON: u64 = 600;

fn scenario_map(cfg: &DeploymentConfig) -> CoverageMap {
    let field = Aabb::square(FIELD_SIDE);
    let mut map = CoverageMap::new(halton_points(N_POINTS, &field), &field, cfg);
    for p in random_points(INITIAL_SENSORS, &field, SEED) {
        map.add_sensor(p, cfg.rs);
    }
    map
}

/// Runs `placer` on the canonical scenario under `plan` with the
/// invariant checker attached.
fn chaos_run(placer: &dyn Placer, plan: &FaultPlan) -> (PlacementOutcome, InvariantChecker) {
    let mut cfg = DeploymentConfig::with_k(1);
    cfg.chaos = Some(plan.clone());
    cfg.invariants = InvariantChecker::enabled();
    let mut map = scenario_map(&cfg);
    let out = placer.place(&mut map, &cfg);
    (out, cfg.invariants)
}

/// The fuzzed property: why did the run fail, or `None` when it held.
/// Deterministic in `plan`, so the shrinker can re-evaluate it freely.
fn plan_failure(placer: &dyn Placer, plan: &FaultPlan) -> Option<String> {
    let (out, checker) = chaos_run(placer, plan);
    let violations = checker.violations();
    if !violations.is_empty() {
        return Some(format!(
            "invariant violations:\n  {}",
            violations.join("\n  ")
        ));
    }
    if !out.fully_covered {
        return Some(format!(
            "restoration did not reach full k-coverage ({} placed, {} rounds)",
            out.placed.len(),
            out.rounds
        ));
    }
    None
}

/// Shrinks a failing plan to a locally minimal one and panics with the
/// minimal script plus a copy-paste replay command. When
/// `CHAOS_PLAN_OUT` names a file, the minimal plan is also written
/// there so CI can upload it as an artifact.
fn fail_with_replay(placer: &dyn Placer, scheme_flag: &str, plan: &FaultPlan, why: &str) -> ! {
    let minimal = shrink_plan(plan, |p| plan_failure(placer, p).is_some());
    if let Some(path) = std::env::var_os("CHAOS_PLAN_OUT") {
        let reason: String = why.lines().map(|l| format!("# {l}\n")).collect();
        let body = format!("# scheme: {scheme_flag}\n{reason}{}", minimal.to_text());
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!("CHAOS_PLAN_OUT: cannot write {path:?}: {e}");
        }
    }
    panic!(
        "chaos property failed: {why}\n\
         minimal failing plan ({} of {} faults):\n{}\n\
         replay: save the plan above as plan.txt and run\n  \
         cargo run --release -p decor-exp --bin decor-cli -- deploy --scheme {scheme_flag} \
         --k 1 --field {FIELD_SIDE} --points {N_POINTS} --initial {INITIAL_SENSORS} \
         --seed {SEED} --chaos-plan plan.txt",
        minimal.len(),
        plan.len(),
        minimal.to_text().trim_end(),
    );
}

fn check_scheme(placer: &dyn Placer, scheme_flag: &str, seed: u64) {
    let plan = FaultPlan::generate(seed, INITIAL_SENSORS, HORIZON);
    if let Some(why) = plan_failure(placer, &plan) {
        fail_with_replay(placer, scheme_flag, &plan, &why);
    }
}

proptest! {
    // CI runs 256+ cases per scheme via PROPTEST_CASES (see the `chaos`
    // job in .github/workflows/ci.yml); 64 keeps local runs snappy.
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn grid_survives_random_fault_plans(seed in any::<u64>()) {
        check_scheme(&GridDecor { cell_size: 10.0 }, "grid-big", seed);
    }

    #[test]
    fn voronoi_survives_random_fault_plans(seed in any::<u64>()) {
        check_scheme(&VoronoiDecor { rc: 8.0 }, "voronoi-small", seed);
    }

    #[test]
    fn holes_survives_random_fault_plans(seed in any::<u64>()) {
        check_scheme(&HoleHealing, "holes", seed);
    }
}

/// End-to-end shrinking: a noisy plan in which exactly one fault is
/// decisive must delta-debug down to that fault alone. The property
/// here — "the chaos run places more sensors than the fault-free
/// baseline" — holds for any plan whose crash actually uncovers points,
/// and for none of the noise events.
#[test]
fn shrinking_isolates_the_decisive_fault() {
    let placer = GridDecor { cell_size: 10.0 };
    let baseline = {
        let cfg = DeploymentConfig::with_k(1);
        let mut map = scenario_map(&cfg);
        let out = placer.place(&mut map, &cfg);
        assert!(out.fully_covered);
        out.placed.len()
    };
    let plan = FaultPlan::parse(
        "0 latency 3\n\
         1 drain 2 0.5\n\
         2 crash 3\n\
         4 drain 5 0.25\n\
         6 latency 0\n",
    )
    .unwrap();
    let mut fails = |p: &FaultPlan| chaos_run(&placer, p).0.placed.len() > baseline;
    assert!(fails(&plan), "the crash must force extra placements");
    let minimal = shrink_plan(&plan, &mut fails);
    assert!(fails(&minimal), "shrinking must preserve the failure");
    assert!(
        minimal.len() < plan.len(),
        "shrinking must drop the noise events, kept:\n{}",
        minimal.to_text()
    );
    for i in 0..minimal.len() {
        let mut rest = minimal.events().to_vec();
        rest.remove(i);
        assert!(
            !fails(&FaultPlan::new(rest)),
            "minimal plan is not 1-minimal: event {i} of\n{}",
            minimal.to_text()
        );
    }
}

/// Chaos at 100× the seed field area (ROADMAP item 1): a 300×300 field,
/// lattice-covered, with a deterministic fault plan crashing sensors
/// spread across the field. The run must stay invariant-green, restore
/// full coverage, and leave the hierarchical coverage core consistent.
#[test]
fn grid_survives_chaos_on_large_field() {
    use decor::geom::Point;
    let field = Aabb::square(300.0);
    let mut cfg = DeploymentConfig::with_k(1);
    cfg.invariants = InvariantChecker::enabled();
    cfg.chaos = Some(
        FaultPlan::parse(
            "0 crash 12\n\
             3 crash 700\n\
             5 latency 4\n\
             8 crash 1803\n\
             11 crash 2222\n\
             14 crash 3599\n",
        )
        .unwrap(),
    );
    let mut map = CoverageMap::new(halton_points(15_000, &field), &field, &cfg);
    for i in 0..60 {
        for j in 0..60 {
            map.add_sensor(
                Point::new(2.5 + 5.0 * i as f64, 2.5 + 5.0 * j as f64),
                cfg.rs,
            );
        }
    }
    assert_eq!(map.count_below(1), 0, "the lattice must cover the field");
    let placer = GridDecor { cell_size: 10.0 };
    let out = placer.place(&mut map, &cfg);
    assert!(out.fully_covered, "restoration must converge under chaos");
    cfg.invariants.assert_green();
    map.verify_consistency();
}

/// Every crash scheduled while its victim is still alive must appear in
/// the checker's dead-set — the bookkeeping the election and placement
/// invariants hang off.
#[test]
fn checker_accounts_for_every_effective_crash() {
    let placer = VoronoiDecor { rc: 8.0 };
    let plan = FaultPlan::parse("0 crash 1\n3 crash 6\n3 crash 1\n80 crash 4\n").unwrap();
    let (out, checker) = chaos_run(&placer, &plan);
    assert!(out.fully_covered);
    checker.assert_green();
    // The duplicate crash of node 1 fires on a corpse and is dropped.
    assert_eq!(checker.dead(), vec![1, 4, 6]);
}

/// Differential satellite: attaching an *empty* fault plan must not
/// perturb the simulation at all — the JSONL traces are bit-identical.
/// The chaos engine rides the transport clock, so this pins both the
/// "no engine constructed" and "engine constructed but never fires"
/// paths to the same event stream.
fn traced_run(placer: &dyn Placer, chaos: Option<FaultPlan>) -> String {
    let mut cfg = DeploymentConfig::with_k(1);
    cfg.trace = TraceHandle::jsonl_writer();
    cfg.chaos = chaos;
    let mut map = scenario_map(&cfg);
    let out = placer.place(&mut map, &cfg);
    assert!(out.fully_covered, "scenario must converge");
    cfg.trace.jsonl().expect("JSONL sink attached")
}

fn assert_empty_plan_is_inert(placer: &dyn Placer) {
    let without = traced_run(placer, None);
    let with_empty = traced_run(placer, Some(FaultPlan::empty()));
    if let Some(d) = first_divergence(&without, &with_empty) {
        panic!("empty fault plan perturbed the trace: {d}");
    }
}

#[test]
fn grid_empty_plan_trace_is_bit_identical() {
    assert_empty_plan_is_inert(&GridDecor { cell_size: 10.0 });
}

#[test]
fn voronoi_empty_plan_trace_is_bit_identical() {
    assert_empty_plan_is_inert(&VoronoiDecor { rc: 8.0 });
}
