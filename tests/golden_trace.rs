//! Golden-trace regression tests (gated behind the `trace` feature).
//!
//! Each scenario runs a placer with a JSONL trace sink attached and
//! compares the canonical trace line-for-line against a fixture
//! committed under `tests/fixtures/`. Any behavioral drift — a message
//! sent in a different order, an election resolving differently, a
//! placement moving by one point — fails with the differ's
//! first-divergence report.
//!
//! Regenerating fixtures is legitimate ONLY when a change intentionally
//! alters simulation behavior (see tests/README.md). To regenerate:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --features trace --test golden_trace
//! ```
#![cfg(feature = "trace")]

use decor::core::{
    run_endurance, CentralizedGreedy, CoverageMap, DeploymentConfig, EnduranceConfig, GridDecor,
    HoleHealing, InvariantChecker, LinkConfig, Placer, VoronoiDecor,
};
use decor::geom::{Aabb, Disk, Point};
use decor::lds::{halton_points, random_points};
use decor::net::{FaultPlan, RotationConfig};
use decor::trace::{first_divergence, TraceHandle};
use std::path::PathBuf;

/// A 30×30 field split by the grid scheme into 3×3 cells of edge 10.
const FIELD_SIDE: f64 = 30.0;
const N_POINTS: usize = 150;
const INITIAL_SENSORS: usize = 4;
const SEED: u64 = 11;

/// Runs `placer` on the canonical 3×3-cell scenario and returns the
/// JSONL trace of the run.
fn run_scenario(placer: &dyn Placer, loss: Option<f64>) -> String {
    let field = Aabb::square(FIELD_SIDE);
    let mut cfg = DeploymentConfig::with_k(1);
    if let Some(rate) = loss {
        cfg.link = LinkConfig::lossy(rate, 23);
    }
    cfg.trace = TraceHandle::jsonl_writer();
    let mut map = CoverageMap::new(halton_points(N_POINTS, &field), &field, &cfg);
    for p in random_points(INITIAL_SENSORS, &field, SEED) {
        map.add_sensor(p, cfg.rs);
    }
    let out = placer.place(&mut map, &cfg);
    assert!(out.fully_covered, "scenario must converge");
    cfg.trace.jsonl().expect("JSONL sink attached")
}

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Compares `got` against the committed fixture, or rewrites the fixture
/// when `UPDATE_GOLDEN=1` is set.
fn assert_matches_fixture(name: &str, got: &str) {
    let path = fixture_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some_and(|v| v == "1") {
        std::fs::write(&path, got).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        eprintln!("updated {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{}: {e}\nrun `UPDATE_GOLDEN=1 cargo test --features trace --test golden_trace` \
             to (re)create fixtures",
            path.display()
        )
    });
    if let Some(d) = first_divergence(&want, got) {
        panic!(
            "{name}: trace drifted from the committed golden fixture.\n{d}\n\
             If this change is intentional, regenerate with \
             `UPDATE_GOLDEN=1 cargo test --features trace --test golden_trace` \
             and explain the behavioral change in the commit."
        );
    }
}

#[test]
fn grid_3x3_zero_loss_matches_golden() {
    let trace = run_scenario(&GridDecor { cell_size: 10.0 }, None);
    assert_matches_fixture("grid_3x3_loss0.jsonl", &trace);
}

#[test]
fn grid_3x3_20pct_loss_matches_golden() {
    let trace = run_scenario(&GridDecor { cell_size: 10.0 }, Some(0.2));
    assert_matches_fixture("grid_3x3_loss20.jsonl", &trace);
}

#[test]
fn voronoi_3x3_zero_loss_matches_golden() {
    let trace = run_scenario(&VoronoiDecor { rc: 8.0 }, None);
    assert_matches_fixture("voronoi_3x3_loss0.jsonl", &trace);
}

#[test]
fn voronoi_3x3_20pct_loss_matches_golden() {
    let trace = run_scenario(&VoronoiDecor { rc: 8.0 }, Some(0.2));
    assert_matches_fixture("voronoi_3x3_loss20.jsonl", &trace);
}

#[test]
fn holes_3x3_zero_loss_matches_golden() {
    let trace = run_scenario(&HoleHealing, None);
    assert_matches_fixture("holes_3x3_loss0.jsonl", &trace);
}

/// The hole healer under a scripted chaos plan on a 20%-loss link, with
/// the invariant checker attached: two of the four initial sensors crash
/// mid-restoration and the healer must route around its own repairs,
/// bit-reproducibly. (The healer itself is message-free — the lossy link
/// exercises the accounting mirror, not a protocol.)
#[test]
fn holes_chaos_20pct_loss_matches_golden() {
    let field = Aabb::square(FIELD_SIDE);
    let mut cfg = DeploymentConfig::with_k(1);
    cfg.link = LinkConfig::lossy(0.2, 23);
    cfg.chaos = Some(FaultPlan::parse("0 crash 1\n3 crash 3\n5 latency 2\n").unwrap());
    cfg.invariants = InvariantChecker::enabled();
    cfg.trace = TraceHandle::jsonl_writer();
    let mut map = CoverageMap::new(halton_points(N_POINTS, &field), &field, &cfg);
    for p in random_points(INITIAL_SENSORS, &field, SEED) {
        map.add_sensor(p, cfg.rs);
    }
    let out = HoleHealing.place(&mut map, &cfg);
    assert!(out.fully_covered, "healer must out-place the fault plan");
    assert!(
        cfg.invariants.violations().is_empty(),
        "invariants: {:?}",
        cfg.invariants.violations()
    );
    let trace = cfg.trace.jsonl().expect("JSONL sink attached");
    assert_matches_fixture("holes_chaos_loss20.jsonl", &trace);
}

/// Restoration at 100× the seed field area: a 300×300 field (15k points,
/// seed density) pre-covered by a sensor lattice, with an area failure
/// punched at the center. Only the damaged area acts, so the fixture
/// stays small even though the field is two orders of magnitude bigger —
/// the behavior the hierarchical coverage core must not change.
#[test]
fn voronoi_large_field_restoration_matches_golden() {
    let side = 300.0;
    let field = Aabb::square(side);
    let mut cfg = DeploymentConfig::with_k(1);
    cfg.trace = TraceHandle::jsonl_writer();
    let mut map = CoverageMap::new(halton_points(15_000, &field), &field, &cfg);
    let hole = Point::new(150.0, 150.0);
    let mut victims = Vec::new();
    for i in 0..60 {
        for j in 0..60 {
            let p = Point::new(2.5 + 5.0 * i as f64, 2.5 + 5.0 * j as f64);
            let id = map.add_sensor(p, cfg.rs);
            if p.dist(hole) <= 15.0 {
                victims.push(id);
            }
        }
    }
    assert_eq!(map.count_below(1), 0, "the lattice must cover the field");
    for id in victims {
        map.deactivate_sensor(id);
    }
    assert!(map.count_below(1) > 0, "the hole must uncover points");
    let out = VoronoiDecor { rc: 8.0 }.place(&mut map, &cfg);
    assert!(out.fully_covered, "restoration must converge");
    map.verify_consistency();
    let trace = cfg.trace.jsonl().expect("JSONL sink attached");
    assert_matches_fixture("voronoi_large_restore.jsonl", &trace);
}

/// Rotation + failure endurance: a compact k=3 deployment duty-cycles
/// its agreed shifts, a scripted disaster kills part of one stack at
/// period 1, neighbors detect the silence in-network, and the rotation
/// carries on to the horizon. The fixture pins the whole lifecycle
/// stream — shift boundaries, sleep/wake transitions, battery-drain
/// summaries, the failure and its heartbeat-miss detection — so any
/// drift in schedule agreement, rotation order or detector behavior
/// shows up as a first-divergence report.
#[test]
fn endurance_rotation_disaster_matches_golden() {
    let field = Aabb::square(FIELD_SIDE);
    let mut cfg = DeploymentConfig::with_k(3);
    // A short comms radius keeps the neighbor graph (and the fixture)
    // sparse while staying connected across the dense stacks.
    cfg.rc = 5.0;
    let mut map = CoverageMap::new(halton_points(60, &field), &field, &cfg);
    CentralizedGreedy.place(&mut map, &cfg);
    assert_eq!(map.count_below(3), 0, "scenario must start 3-covered");
    // Trace only the endurance loop, not the deployment placement.
    cfg.rotation = Some(RotationConfig::default());
    cfg.trace = TraceHandle::jsonl_writer();
    let e = EnduranceConfig {
        rotate: true,
        max_periods: 4,
        timeout_periods: 2,
        disasters: vec![(1, Disk::new(Point::new(10.0, 12.0), 1.5))],
        ..EnduranceConfig::default()
    };
    let report = run_endurance(&mut map, &CentralizedGreedy, &cfg, &e);
    assert!(report.shifts > 1, "the deployment must actually rotate");
    assert!(report.disaster_deaths > 0, "the disc must hit someone");
    assert!(report.detected_deaths > 0, "the death must be detected");
    assert!(report.ended_by_horizon, "the run must survive the disaster");
    assert_eq!(report.false_positives, 0);
    let trace = cfg.trace.jsonl().expect("JSONL sink attached");
    assert_matches_fixture("endurance_rotation.jsonl", &trace);
}

#[test]
fn traced_runs_replay_with_zero_divergence() {
    // Re-running the same scenario with the same seed must reproduce the
    // trace bit-for-bit — the replayability guarantee golden fixtures
    // rest on.
    for loss in [None, Some(0.2)] {
        let a = run_scenario(&GridDecor { cell_size: 10.0 }, loss);
        let b = run_scenario(&GridDecor { cell_size: 10.0 }, loss);
        assert!(
            first_divergence(&a, &b).is_none(),
            "grid replay diverged (loss={loss:?})"
        );
        let a = run_scenario(&VoronoiDecor { rc: 8.0 }, loss);
        let b = run_scenario(&VoronoiDecor { rc: 8.0 }, loss);
        assert!(
            first_divergence(&a, &b).is_none(),
            "voronoi replay diverged (loss={loss:?})"
        );
        let a = run_scenario(&HoleHealing, loss);
        let b = run_scenario(&HoleHealing, loss);
        assert!(
            first_divergence(&a, &b).is_none(),
            "holes replay diverged (loss={loss:?})"
        );
    }
}

#[test]
fn every_trace_line_is_canonical() {
    // Each fixture line must parse as one canonical record: strictly
    // increasing `seq`, a known event kind, and no trailing whitespace.
    let kinds = [
        "msg_send",
        "msg_deliver",
        "msg_drop",
        "msg_retry",
        "msg_ack",
        "election_start",
        "election_won",
        "heartbeat_miss",
        "node_failed",
        "sensor_placed",
        "round_begin",
        "round_end",
        "coverage_delta",
    ];
    let trace = run_scenario(&GridDecor { cell_size: 10.0 }, Some(0.2));
    let mut last_seq: Option<u64> = None;
    for line in trace.lines() {
        assert_eq!(line, line.trim(), "no padding: {line}");
        let seq: u64 = line
            .strip_prefix("{\"seq\":")
            .and_then(|rest| rest.split(',').next())
            .and_then(|n| n.parse().ok())
            .unwrap_or_else(|| panic!("unparsable record: {line}"));
        assert!(last_seq.is_none_or(|p| seq == p + 1), "seq gap at {line}");
        last_seq = Some(seq);
        assert!(
            kinds
                .iter()
                .any(|k| line.contains(&format!("\"ev\":\"{k}\""))),
            "unknown event kind: {line}"
        );
    }
    assert!(last_seq.is_some(), "trace must not be empty");
}
