//! Property-based tests over the workspace's core invariants, spanning
//! crates through the facade API.

use decor::core::{benefit_at, BenefitTable, CoverageMap, DeploymentConfig};
use decor::geom::{Aabb, GridIndex, Point};
use decor::lds::{halton_points, radical_inverse, star_discrepancy};
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = Point> {
    (0.0..100.0f64, 0.0..100.0f64).prop_map(|(x, y)| Point::new(x, y))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The spatial index agrees with brute force for any point cloud,
    /// query center and radius.
    #[test]
    fn grid_index_matches_brute_force(
        pts in prop::collection::vec(arb_point(), 1..120),
        q in arb_point(),
        r in 0.1..60.0f64,
    ) {
        let mut idx = GridIndex::for_square_field(100.0, 4.0);
        for (i, &p) in pts.iter().enumerate() {
            idx.insert(i, p);
        }
        let mut got = idx.within(q, r);
        got.sort_unstable();
        let mut want: Vec<usize> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| q.dist_sq(**p) <= r * r)
            .map(|(i, _)| i)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// Coverage bookkeeping survives arbitrary interleavings of sensor
    /// additions and deactivations.
    #[test]
    fn coverage_map_incremental_matches_recompute(
        sensors in prop::collection::vec((arb_point(), 1.0..12.0f64), 1..40),
        kills in prop::collection::vec(any::<prop::sample::Index>(), 0..12),
    ) {
        let field = Aabb::square(100.0);
        let cfg = DeploymentConfig::default();
        let mut map = CoverageMap::new(halton_points(200, &field), &field, &cfg);
        for &(p, rs) in &sensors {
            map.add_sensor(p, rs);
        }
        for idx in &kills {
            let sid = idx.index(sensors.len());
            map.deactivate_sensor(sid);
        }
        map.verify_consistency(); // recomputes from scratch and compares
    }

    /// The incremental benefit table equals direct evaluation after any
    /// placement sequence.
    #[test]
    fn benefit_table_matches_direct(
        placements in prop::collection::vec(any::<prop::sample::Index>(), 1..25),
        k in 1u32..4,
    ) {
        let field = Aabb::square(100.0);
        let cfg = DeploymentConfig { k, ..DeploymentConfig::default() };
        let mut map = CoverageMap::new(halton_points(150, &field), &field, &cfg);
        let cands: Vec<usize> = (0..map.n_points()).collect();
        let mut table = BenefitTable::new(&map, cands.clone(), cfg.rs, cfg.k);
        for idx in &placements {
            let pid = idx.index(map.n_points());
            let q = map.points()[pid];
            map.add_sensor(q, cfg.rs);
            table.on_sensor_added(&map, q, cfg.rs);
        }
        for (slot, &pid) in cands.iter().enumerate() {
            prop_assert_eq!(
                table.benefit(slot),
                benefit_at(&map, map.points()[pid], cfg.rs, cfg.k)
            );
        }
    }

    /// Radical inverses stay in [0, 1) for any index and base.
    #[test]
    fn radical_inverse_in_unit_interval(i in 0u64..1_000_000, b in 2u32..64) {
        let x = radical_inverse(i, b);
        prop_assert!((0.0..1.0).contains(&x));
    }

    /// Star discrepancy is a proper [0, 1] measure for any unit-square
    /// point set.
    #[test]
    fn star_discrepancy_is_bounded(
        pts in prop::collection::vec((0.0..1.0f64, 0.0..1.0f64), 1..40),
    ) {
        let d = star_discrepancy(&pts);
        prop_assert!((0.0..=1.0).contains(&d));
    }

    /// A benefit is bounded by k times the points in range, and placing a
    /// sensor at a candidate never increases its own benefit.
    #[test]
    fn benefit_bounds_and_monotonicity(
        pre in prop::collection::vec(any::<prop::sample::Index>(), 0..10),
        target in any::<prop::sample::Index>(),
        k in 1u32..4,
    ) {
        let field = Aabb::square(100.0);
        let cfg = DeploymentConfig { k, ..DeploymentConfig::default() };
        let mut map = CoverageMap::new(halton_points(150, &field), &field, &cfg);
        for idx in &pre {
            let pid = idx.index(map.n_points());
            map.add_sensor(map.points()[pid], cfg.rs);
        }
        let pid = target.index(map.n_points());
        let c = map.points()[pid];
        let before = benefit_at(&map, c, cfg.rs, cfg.k);
        let in_range = map.points_within(c, cfg.rs).len() as u64;
        prop_assert!(before <= in_range * k as u64);
        map.add_sensor(c, cfg.rs);
        let after = benefit_at(&map, c, cfg.rs, cfg.k);
        prop_assert!(after <= before);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The hierarchical coverage core (u8 slabs, tile deficiency
    /// summaries, active-radius histogram) stays consistent through mixed
    /// add / deactivate / reactivate traffic on a 10⁵-point field — the
    /// scale the tile layer exists for. Also pins the tile-guided
    /// `uncovered_ids` to the ground-truth sweep at several requirements.
    #[test]
    fn large_field_coverage_core_survives_mixed_ops(
        sensors in prop::collection::vec((arb_point(), 2.0..30.0f64), 10..40),
        kills in prop::collection::vec(any::<prop::sample::Index>(), 0..15),
        revives in prop::collection::vec(any::<prop::sample::Index>(), 0..10),
    ) {
        let field = Aabb::square(100.0);
        let cfg = DeploymentConfig { k: 2, ..DeploymentConfig::default() };
        let mut map = CoverageMap::new(halton_points(100_000, &field), &field, &cfg);
        for &(p, rs) in &sensors {
            map.add_sensor(p, rs);
        }
        for idx in &kills {
            map.deactivate_sensor(idx.index(sensors.len()));
        }
        for idx in &revives {
            map.reactivate_sensor(idx.index(sensors.len()));
        }
        map.verify_consistency();
        for k in [1u32, 2, 3] {
            let sweep: Vec<usize> =
                (0..map.n_points()).filter(|&i| map.coverage(i) < k).collect();
            prop_assert_eq!(map.uncovered_ids(k), sweep, "k={}", k);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For any sub-rectangle, the fraction of Halton points inside tracks
    /// its area — the quantitative form of "points approximate the area".
    #[test]
    fn halton_points_estimate_rectangle_areas(
        x0 in 0.0..80.0f64,
        y0 in 0.0..80.0f64,
        w in 10.0..20.0f64,
        h in 10.0..20.0f64,
    ) {
        let field = Aabb::square(100.0);
        let pts = halton_points(2000, &field);
        let rect = Aabb::new(Point::new(x0, y0), Point::new((x0 + w).min(100.0), (y0 + h).min(100.0)));
        let inside = pts.iter().filter(|p| rect.contains(**p)).count() as f64;
        let est = inside / 2000.0 * 10_000.0;
        let err = (est - rect.area()).abs() / rect.area();
        prop_assert!(err < 0.12, "area {} est {} err {}", rect.area(), est, err);
    }
}
