//! Integration: the full failure-and-restoration pipeline on a lossy
//! medium. Heartbeat detection, distributed placement and the placement
//! notices all share the configured link; the reliable transport must keep
//! the distributed placers convergent while the retry/ack accounting shows
//! what that reliability costs.

use decor::core::restore::fail_and_restore;
use decor::core::{
    CentralizedGreedy, CoverageMap, DeploymentConfig, GridDecor, HoleHealing, LinkConfig, Placer,
    VoronoiDecor,
};
use decor::geom::Aabb;
use decor::lds::{halton_points, random_points};
use decor::net::{FailurePlan, HeartbeatConfig};

/// A fully k-covered field built by the centralized baseline.
fn covered_map(k: u32, n_pts: usize, initial: usize, seed: u64) -> (CoverageMap, DeploymentConfig) {
    let field = Aabb::square(100.0);
    let cfg = DeploymentConfig::with_k(k);
    let mut map = CoverageMap::new(halton_points(n_pts, &field), &field, &cfg);
    for p in random_points(initial, &field, seed) {
        map.add_sensor(p, cfg.rs);
    }
    CentralizedGreedy.place(&mut map, &cfg);
    assert_eq!(map.count_below(k), 0);
    (map, cfg)
}

#[test]
fn restoration_reaches_target_over_a_lossy_medium() {
    // 20% packet loss on every exchange — heartbeats and placement
    // notices alike. Restoration must still reach full k-coverage.
    let (mut map, mut cfg) = covered_map(2, 600, 60, 31);
    cfg.link = LinkConfig::lossy(0.2, 41);
    let plan = FailurePlan::Fraction {
        frac: 0.15,
        seed: 43,
    };
    let report = fail_and_restore(&mut map, &VoronoiDecor { rc: 8.0 }, &cfg, &plan, None);
    assert!(report.victims > 0);
    assert!(report.coverage_after_failure < 1.0);
    assert_eq!(report.coverage_after_restore, 1.0, "{report:?}");
    assert_eq!(map.count_below(2), 0);
    assert!(
        report.outcome.messages.retries > 0,
        "loss must force retries: {:?}",
        report.outcome.messages
    );
}

#[test]
fn heartbeat_false_positives_do_not_corrupt_restoration_counts() {
    // Heavy loss makes the detector suspect *alive* sensors. Those false
    // positives must stay alive in the coverage map: the restoration
    // replaces only the real victims, and the bookkeeping must add up
    // exactly — active after = active before − victims + placed.
    let (mut map, mut cfg) = covered_map(2, 600, 60, 33);
    cfg.link = LinkConfig::lossy(0.3, 47);
    let active_before = map.n_active_sensors();
    let plan = FailurePlan::Fraction {
        frac: 0.1,
        seed: 53,
    };
    let hb = HeartbeatConfig {
        period: 100,
        timeout_periods: 2, // trigger-happy: loss^2 per window is common
        seed: 59,
    };
    let report = fail_and_restore(&mut map, &VoronoiDecor { rc: 8.0 }, &cfg, &plan, Some(hb));
    assert!(report.victims > 0);
    assert!(
        report.detected <= report.victims,
        "detected counts real victims only: {report:?}"
    );
    assert_eq!(report.extra_nodes, report.outcome.placed.len());
    assert_eq!(
        map.n_active_sensors(),
        active_before - report.victims + report.extra_nodes,
        "false positives must not be deactivated: {report:?}"
    );
    assert_eq!(report.coverage_after_restore, 1.0);
}

#[test]
fn hole_healer_restores_through_the_pipeline_without_protocol_traffic() {
    // The exact-geometry healer rides the same failure-and-restoration
    // pipeline: heartbeat detection runs over the 20%-loss link, but the
    // healer itself is centralized and must restore full coverage with
    // zero protocol messages — loss cannot slow it down or change what
    // it places.
    let (mut map, mut cfg) = covered_map(1, 600, 60, 31);
    cfg.link = LinkConfig::lossy(0.2, 41);
    let plan = FailurePlan::Fraction {
        frac: 0.2,
        seed: 61,
    };
    let hb = HeartbeatConfig {
        period: 100,
        timeout_periods: 3,
        seed: 67,
    };
    let report = fail_and_restore(&mut map, &HoleHealing, &cfg, &plan, Some(hb));
    assert!(report.victims > 0);
    assert!(report.coverage_after_failure < 1.0);
    assert_eq!(report.coverage_after_restore, 1.0, "{report:?}");
    assert_eq!(map.count_below(1), 0);
    assert_eq!(
        report.outcome.messages.protocol_total, 0,
        "the healer is message-free: {:?}",
        report.outcome.messages
    );
}

#[test]
fn both_distributed_placers_converge_up_to_thirty_percent_loss() {
    // The acceptance bar of the transport layer: at 10% and 30% loss both
    // distributed schemes still reach full k-coverage, the blind-spot
    // duplicates stay bounded, and retry/ack traffic grows with the rate.
    let placers: [(&str, &dyn Placer); 2] = [
        ("voronoi", &VoronoiDecor { rc: 8.0 }),
        ("grid", &GridDecor { cell_size: 5.0 }),
    ];
    for (name, placer) in placers {
        let baseline = {
            let (mut map, cfg) = damaged_map(2, 500, 60, 35);
            placer.place(&mut map, &cfg).placed.len()
        };
        let mut prev_retries = 0;
        for loss in [0.1, 0.3] {
            let (mut map, mut cfg) = damaged_map(2, 500, 60, 35);
            cfg.link = LinkConfig::lossy(loss, 61);
            let out = placer.place(&mut map, &cfg);
            assert!(out.fully_covered, "{name} at loss {loss}");
            assert!(map.min_coverage() >= 2, "{name} at loss {loss}");
            assert!(
                out.placed.len() <= baseline * 3 / 2 + 5,
                "{name} at loss {loss}: {} placed vs {baseline} baseline",
                out.placed.len()
            );
            assert!(
                out.messages.retries > prev_retries,
                "{name}: retry traffic must grow with loss"
            );
            assert!(out.messages.acks > 0, "{name}: acks are counted");
            prev_retries = out.messages.retries;
        }
    }
}

/// A partially covered field (no placer has run yet).
fn damaged_map(k: u32, n_pts: usize, initial: usize, seed: u64) -> (CoverageMap, DeploymentConfig) {
    let field = Aabb::square(100.0);
    let cfg = DeploymentConfig::with_k(k);
    let mut map = CoverageMap::new(halton_points(n_pts, &field), &field, &cfg);
    for p in random_points(initial, &field, seed) {
        map.add_sensor(p, cfg.rs);
    }
    (map, cfg)
}
