//! Differential tests for the PR-1 placement engine: the incremental
//! benefit machinery ([`BenefitTable`], [`ShardedBenefitEngine`]) must stay
//! bit-identical to direct evaluation ([`benefit_at`], [`par_best_candidate`])
//! under arbitrary sensor churn, and the engine-backed centralized placement
//! must reproduce the seed BenefitTable placement sequence exactly.

use decor::core::{
    benefit_at, parallel::par_best_candidate, BenefitTable, CentralizedGreedy, CoverageMap,
    DeploymentConfig, Placer, ShardedBenefitEngine,
};
use decor::geom::{Aabb, Point};
use decor::lds::halton_points;
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = Point> {
    (0.0..100.0f64, 0.0..100.0f64).prop_map(|(x, y)| Point::new(x, y))
}

/// One churn step: add a sensor, kill an earlier one, or revive one.
#[derive(Clone, Debug)]
enum Churn {
    Add(Point, f64),
    Kill(prop::sample::Index),
    Revive(prop::sample::Index),
}

fn arb_churn() -> impl Strategy<Value = Churn> {
    // 0..=2 => Add (3x weight), 3 => Kill, 4 => Revive.
    (
        0u8..5,
        arb_point(),
        2.0..10.0f64,
        any::<prop::sample::Index>(),
    )
        .prop_map(|(tag, p, r, idx)| match tag {
            0..=2 => Churn::Add(p, r),
            3 => Churn::Kill(idx),
            _ => Churn::Revive(idx),
        })
}

/// Checks that every incremental benefit view agrees with direct
/// evaluation: table slots, engine slots, `best()` of both, and
/// `par_best_candidate`.
fn assert_all_views_agree(
    map: &CoverageMap,
    table: &BenefitTable,
    engine: &mut ShardedBenefitEngine,
    cands: &[usize],
    rs: f64,
    k: u32,
) {
    for (slot, &pid) in cands.iter().enumerate() {
        let direct = benefit_at(map, map.points()[pid], rs, k);
        assert_eq!(table.benefit(slot), direct, "table slot {slot} (pid {pid})");
        assert_eq!(
            engine.benefit(slot),
            direct,
            "engine slot {slot} (pid {pid})"
        );
    }
    let tb = table.best().map(|(_, pid, _, b)| (pid, b));
    let eb = engine.best(map).map(|(_, pid, _, b)| (pid, b));
    let pb = par_best_candidate(map, cands, rs, k);
    assert_eq!(tb, pb, "table.best vs par_best_candidate");
    assert_eq!(eb, pb, "engine.best vs par_best_candidate");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The incremental table and the sharded engine track direct
    /// evaluation exactly through arbitrary interleavings of sensor
    /// additions, deactivations and reactivations.
    #[test]
    fn benefit_views_agree_under_churn(
        seed_sensors in prop::collection::vec((arb_point(), 2.0..10.0f64), 0..6),
        churn in prop::collection::vec(arb_churn(), 1..24),
        k in 1u32..4,
    ) {
        let field = Aabb::square(100.0);
        let cfg = DeploymentConfig::with_k(k);
        let mut map = CoverageMap::new(halton_points(250, &field), &field, &cfg);
        for &(p, r) in &seed_sensors {
            map.add_sensor(p, r);
        }
        let cands: Vec<usize> = (0..map.n_points()).collect();
        let mut table = BenefitTable::new(&map, cands.clone(), cfg.rs, cfg.k);
        let mut engine = ShardedBenefitEngine::global(&map, cands.clone(), cfg.rs, cfg.k);

        for step in &churn {
            match step {
                Churn::Add(p, r) => {
                    map.add_sensor(*p, *r);
                    table.on_sensor_added(&map, *p, *r);
                    engine.on_sensor_added(&map, *p, *r);
                }
                Churn::Kill(idx) => {
                    if map.n_sensors() == 0 {
                        continue;
                    }
                    let sid = idx.index(map.n_sensors());
                    if map.deactivate_sensor(sid) {
                        let (pos, r) = (map.sensor_pos(sid), map.sensor_rs(sid));
                        table.on_sensor_removed(&map, pos, r);
                        engine.on_sensor_removed(&map, pos, r);
                    }
                }
                Churn::Revive(idx) => {
                    if map.n_sensors() == 0 {
                        continue;
                    }
                    let sid = idx.index(map.n_sensors());
                    if map.reactivate_sensor(sid) {
                        let (pos, r) = (map.sensor_pos(sid), map.sensor_rs(sid));
                        table.on_sensor_added(&map, pos, r);
                        engine.on_sensor_added(&map, pos, r);
                    }
                }
            }
        }
        map.verify_consistency();
        assert_all_views_agree(&map, &table, &mut engine, &cands, cfg.rs, cfg.k);
    }

    /// The engine-backed centralized greedy reproduces the seed
    /// BenefitTable placement sequence bit-for-bit on random fields with
    /// random pre-existing sensors.
    #[test]
    fn engine_placement_sequence_matches_seed_path(
        n_pts in 100usize..400,
        initial in prop::collection::vec((arb_point(), 2.0..8.0f64), 0..12),
        k in 1u32..4,
        cap_tag in 0usize..3,
    ) {
        let field = Aabb::square(100.0);
        let cfg = DeploymentConfig {
            max_new_nodes: [8usize, 25, 100_000][cap_tag],
            ..DeploymentConfig::with_k(k)
        };
        let mut m_engine = CoverageMap::new(halton_points(n_pts, &field), &field, &cfg);
        for &(p, r) in &initial {
            m_engine.add_sensor(p, r);
        }
        let mut m_table = m_engine.clone();
        let a = CentralizedGreedy.place(&mut m_engine, &cfg);
        let b = CentralizedGreedy.place_with_benefit_table(&mut m_table, &cfg);
        prop_assert_eq!(&a.placed, &b.placed);
        prop_assert_eq!(a.fully_covered, b.fully_covered);
        prop_assert_eq!(a.trace.len(), b.trace.len());
        for (ta, tb) in a.trace.iter().zip(&b.trace) {
            prop_assert_eq!(ta.total_sensors, tb.total_sensors);
            prop_assert_eq!(ta.fraction_k_covered, tb.fraction_k_covered);
        }
    }
}

/// Deterministic (non-proptest) churn check with a fixed heterogeneous
/// script, so a regression fails with a stable, reproducible scenario.
#[test]
fn fixed_churn_script_stays_consistent() {
    let field = Aabb::square(100.0);
    let cfg = DeploymentConfig::with_k(2);
    let mut map = CoverageMap::new(halton_points(400, &field), &field, &cfg);
    let cands: Vec<usize> = (0..map.n_points()).collect();
    let mut table = BenefitTable::new(&map, cands.clone(), cfg.rs, cfg.k);
    let mut engine = ShardedBenefitEngine::global(&map, cands.clone(), cfg.rs, cfg.k);

    let script: Vec<(f64, f64, f64)> = (0..30)
        .map(|i| {
            let t = i as f64;
            (
                5.0 + 89.0 * ((t * 0.37) % 1.0),
                5.0 + 89.0 * ((t * 0.61) % 1.0),
                2.0 + 8.0 * ((t * 0.23) % 1.0),
            )
        })
        .collect();
    for &(x, y, r) in &script {
        let p = Point::new(x, y);
        map.add_sensor(p, r);
        table.on_sensor_added(&map, p, r);
        engine.on_sensor_added(&map, p, r);
    }
    // Kill every third sensor, then revive every second killed one.
    for sid in (0..map.n_sensors()).step_by(3) {
        if map.deactivate_sensor(sid) {
            let (pos, r) = (map.sensor_pos(sid), map.sensor_rs(sid));
            table.on_sensor_removed(&map, pos, r);
            engine.on_sensor_removed(&map, pos, r);
        }
    }
    for sid in (0..map.n_sensors()).step_by(6) {
        if map.reactivate_sensor(sid) {
            let (pos, r) = (map.sensor_pos(sid), map.sensor_rs(sid));
            table.on_sensor_added(&map, pos, r);
            engine.on_sensor_added(&map, pos, r);
        }
    }
    map.verify_consistency();
    assert_all_views_agree(&map, &table, &mut engine, &cands, cfg.rs, cfg.k);
}
