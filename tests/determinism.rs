//! Determinism guarantees: every algorithm is a pure function of its
//! seed-derived inputs, and parallel replica execution matches sequential.

use decor::core::parallel::{replica_seed, run_replicas, run_replicas_with_threads};
use decor::core::SchemeKind;
use decor::exp::common::{deploy, deploy_traced, ExpParams};
use decor::trace::first_divergence;

#[test]
fn every_scheme_is_deterministic_in_the_seed() {
    let params = ExpParams::quick();
    for scheme in SchemeKind::ALL {
        let (_, a, _) = deploy(&params, scheme, 2, 7);
        let (_, b, _) = deploy(&params, scheme, 2, 7);
        assert_eq!(a.placed, b.placed, "{}", scheme.label());
        assert_eq!(a.rounds, b.rounds, "{}", scheme.label());
        assert_eq!(
            a.messages.protocol_total,
            b.messages.protocol_total,
            "{}",
            scheme.label()
        );
    }
}

#[test]
fn different_seeds_give_different_fields() {
    let params = ExpParams::quick();
    let (_, a, _) = deploy(&params, SchemeKind::Centralized, 1, 1);
    let (_, b, _) = deploy(&params, SchemeKind::Centralized, 1, 2);
    assert_ne!(a.placed, b.placed, "seeds must matter");
}

#[test]
fn parallel_replicas_equal_sequential_for_real_workload() {
    let params = ExpParams::quick();
    let work = |_: usize, seed: u64| {
        let (_, out, _) = deploy(&params, SchemeKind::GridBig, 1, seed);
        (out.placed.len(), out.messages.protocol_total)
    };
    let par = run_replicas(4, 99, work);
    let seq: Vec<_> = (0..4).map(|i| work(i, replica_seed(99, i))).collect();
    assert_eq!(par, seq);
}

#[test]
fn traces_are_identical_across_worker_counts() {
    // The structured trace is a much finer fingerprint than placement
    // lists: every message send/drop, election and placement must land
    // in the same order whatever the replica worker count. Each replica
    // builds its own sink inside the closure, so worker scheduling
    // cannot interleave streams.
    let params = ExpParams::quick();
    for scheme in [SchemeKind::GridSmall, SchemeKind::VoronoiBig] {
        let run = |threads: usize| {
            run_replicas_with_threads(4, 42, threads, |_, seed| {
                let (_, _, _, text) = deploy_traced(&params, scheme, 2, seed);
                assert!(!text.is_empty(), "trace must not be empty");
                text
            })
        };
        let reference = run(1);
        for threads in [2usize, 8] {
            let got = run(threads);
            for (i, (a, b)) in reference.iter().zip(&got).enumerate() {
                if let Some(d) = first_divergence(a, b) {
                    panic!("{}: replica {i}, threads {threads}: {d}", scheme.label());
                }
            }
        }
    }
}

#[test]
fn lossy_traces_are_identical_across_worker_counts() {
    // Same guarantee on a lossy medium, where the trace additionally
    // carries drops, retries and acks from the reliable transport.
    let mut params = ExpParams::quick();
    params.loss_pct = 20;
    let run = |threads: usize| {
        run_replicas_with_threads(3, 7, threads, |_, seed| {
            let (_, _, _, text) = deploy_traced(&params, SchemeKind::VoronoiSmall, 1, seed);
            text
        })
    };
    let reference = run(1);
    for threads in [2usize, 8] {
        let got = run(threads);
        for (i, (a, b)) in reference.iter().zip(&got).enumerate() {
            if let Some(d) = first_divergence(a, b) {
                panic!("replica {i}, threads {threads}: {d}");
            }
        }
    }
}

#[test]
fn experiment_tables_are_reproducible() {
    let params = ExpParams::quick();
    let a = decor::exp::fig08::run(&params);
    let b = decor::exp::fig08::run(&params);
    assert_eq!(a.rows, b.rows);
    let c = decor::exp::fig04::run(&params);
    let d = decor::exp::fig04::run(&params);
    assert_eq!(c.rows, d.rows);
}
