//! Determinism guarantees: every algorithm is a pure function of its
//! seed-derived inputs, and parallel replica execution matches sequential.

use decor::core::parallel::{replica_seed, run_replicas};
use decor::core::SchemeKind;
use decor::exp::common::{deploy, ExpParams};

#[test]
fn every_scheme_is_deterministic_in_the_seed() {
    let params = ExpParams::quick();
    for scheme in SchemeKind::ALL {
        let (_, a, _) = deploy(&params, scheme, 2, 7);
        let (_, b, _) = deploy(&params, scheme, 2, 7);
        assert_eq!(a.placed, b.placed, "{}", scheme.label());
        assert_eq!(a.rounds, b.rounds, "{}", scheme.label());
        assert_eq!(
            a.messages.protocol_total,
            b.messages.protocol_total,
            "{}",
            scheme.label()
        );
    }
}

#[test]
fn different_seeds_give_different_fields() {
    let params = ExpParams::quick();
    let (_, a, _) = deploy(&params, SchemeKind::Centralized, 1, 1);
    let (_, b, _) = deploy(&params, SchemeKind::Centralized, 1, 2);
    assert_ne!(a.placed, b.placed, "seeds must matter");
}

#[test]
fn parallel_replicas_equal_sequential_for_real_workload() {
    let params = ExpParams::quick();
    let work = |_: usize, seed: u64| {
        let (_, out, _) = deploy(&params, SchemeKind::GridBig, 1, seed);
        (out.placed.len(), out.messages.protocol_total)
    };
    let par = run_replicas(4, 99, work);
    let seq: Vec<_> = (0..4).map(|i| work(i, replica_seed(99, i))).collect();
    assert_eq!(par, seq);
}

#[test]
fn experiment_tables_are_reproducible() {
    let params = ExpParams::quick();
    let a = decor::exp::fig08::run(&params);
    let b = decor::exp::fig08::run(&params);
    assert_eq!(a.rows, b.rows);
    let c = decor::exp::fig04::run(&params);
    let d = decor::exp::fig04::run(&params);
    assert_eq!(c.rows, d.rows);
}
