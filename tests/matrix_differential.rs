//! Differential tier: the scenario-matrix runner against the legacy
//! sequential figure paths.
//!
//! The matrix runner is only trustworthy if pushing a figure through it
//! is *bit-identical* to the hand-written loop it replaced — same seeds,
//! same placements, same floating-point sums. These tests re-implement
//! the legacy fig08 / ext_loss replica loops inline (frozen copies of
//! the pre-runner code) and compare every field of every run, then pin
//! the runner's invariances: worker count (1/2/8) and tracing (on/off)
//! must not change a single bit of the results.

use decor::core::parallel::replica_seed;
use decor::core::{LinkConfig, Placer, SchemeKind, VoronoiDecor};
use decor::exp::common::{deploy, ExpParams};
use decor::exp::runner::{aggregate, MatrixRunner};
use decor::exp::scenario::{ScenarioMatrix, ScenarioSpec, Workload, PROBE_PERIOD};
use decor::exp::stats::mean;
use decor::exp::{ext_loss, fig08};
use decor::net::{FailurePlan, HeartbeatConfig, HeartbeatSim, Network};

/// A fig08-equivalent matrix restricted to k ∈ {1, 2} (the full KS sweep
/// is minutes-long at test scale; the code path is identical).
fn fig08_like_matrix(params: &ExpParams, trace: bool) -> ScenarioMatrix {
    let mut cells = Vec::new();
    for &k in &[1u32, 2] {
        for &scheme in &SchemeKind::ALL {
            let mut spec = ScenarioSpec::from_params(params, scheme, k);
            spec.name = format!("fig08-{}-k{k}", scheme.spec_name());
            spec.base_seed = params.base_seed ^ (k as u64) << 8;
            spec.trace = trace;
            cells.push(spec);
        }
    }
    ScenarioMatrix::new(cells).unwrap()
}

#[test]
fn fig08_matrix_is_bit_identical_to_the_sequential_loop() {
    let params = ExpParams::quick();
    let m = fig08_like_matrix(&params, false);
    let out = MatrixRunner::new(2).run(&m);
    assert!(out.complete());

    // The legacy path, frozen: for each (k, scheme) cell, a sequential
    // replica loop over `deploy` with the module's seed mixing.
    for (i, run) in m.expand().iter().enumerate() {
        let spec = &m.cells()[run.cell];
        let seed = replica_seed(params.base_seed ^ (spec.k as u64) << 8, run.replica);
        let (map, legacy, cfg) = deploy(&params, spec.scheme, spec.k, seed);
        let got = out.results[i].as_ref().unwrap();
        assert_eq!(got.seed, seed, "{}", spec.name);
        assert_eq!(got.total_sensors, legacy.total_sensors(), "{}", spec.name);
        assert_eq!(got.placed, legacy.placed.len(), "{}", spec.name);
        assert_eq!(got.rounds, legacy.rounds, "{}", spec.name);
        assert_eq!(got.retries, legacy.messages.retries, "{}", spec.name);
        assert_eq!(got.fully_covered, legacy.fully_covered, "{}", spec.name);
        // Bitwise f64 equality — not approximate.
        assert_eq!(
            got.coverage_pct,
            map.fraction_k_covered(cfg.k) * 100.0,
            "{}",
            spec.name
        );
    }

    // Aggregation reproduces the legacy `mean(per-replica totals)` sums
    // (same values, same summation order).
    for (cell, spec) in m.cells().iter().enumerate() {
        let legacy_mean = mean(
            &(0..spec.replicas)
                .map(|i| {
                    let seed = replica_seed(spec.base_seed, i);
                    let (_, out, _) = deploy(&params, spec.scheme, spec.k, seed);
                    out.total_sensors() as f64
                })
                .collect::<Vec<_>>(),
        );
        assert_eq!(
            aggregate(&m, &out)[cell].mean_total_sensors,
            legacy_mean,
            "{}",
            spec.name
        );
    }
}

/// The per-replica column tuple the legacy ext_loss module fed to `mean`:
/// detection %, false alarms, latency, coverage %, retries, gave-up.
type LossColumns = (f64, f64, f64, f64, f64, f64);

/// The pre-runner ext_loss replica body, frozen verbatim.
fn legacy_ext_loss_replica(params: &ExpParams, loss: u32, seed: u64) -> LossColumns {
    const PERIOD: u64 = 1_000;
    let (mut map, _, mut cfg) = deploy(params, SchemeKind::Centralized, 2, seed);
    let sensors = map.active_sensors();
    let mut net = Network::new(*map.field());
    for &(_, pos) in &sensors {
        net.add_node(pos, cfg.rs, cfg.rc);
    }
    net.set_loss(loss as f64 / 100.0, seed ^ 0xF0);
    let victims = FailurePlan::Fraction {
        frac: 0.1,
        seed: seed ^ 0x0F,
    }
    .victims(&net);
    let sim = HeartbeatSim::new(HeartbeatConfig {
        period: PERIOD,
        timeout_periods: 3,
        seed: seed ^ 0xBEA7,
    });
    let fail_at = 4 * PERIOD;
    let report = sim.run(&mut net, &victims, fail_at, fail_at + 30 * PERIOD);
    let rate = if victims.is_empty() {
        1.0
    } else {
        report.first_detection.len() as f64 / victims.len() as f64
    };
    let latency = report
        .max_latency(fail_at)
        .map(|l| l as f64 / PERIOD as f64)
        .unwrap_or(0.0);
    for &v in &victims {
        map.deactivate_sensor(sensors[v].0);
    }
    if loss > 0 {
        cfg.link = LinkConfig::lossy(loss as f64 / 100.0, seed ^ 0x7A);
    }
    let restore = VoronoiDecor { rc: 8.0 }.place(&mut map, &cfg);
    (
        rate * 100.0,
        report.false_positives.len() as f64,
        latency,
        map.fraction_k_covered(cfg.k) * 100.0,
        restore.messages.retries as f64,
        restore.messages.notices_gave_up as f64,
    )
}

#[test]
fn ext_loss_matrix_is_bit_identical_to_the_legacy_closure() {
    let params = ExpParams::quick();
    assert_eq!(PROBE_PERIOD, 1_000, "probe must keep the legacy period");
    let m = ext_loss::matrix(&params);
    let out = MatrixRunner::new(2).run(&m);
    assert!(out.complete());
    let runs = m.expand();
    for (i, run) in runs.iter().enumerate() {
        let spec = &m.cells()[run.cell];
        assert_eq!(spec.workload, Workload::FailureProbe);
        let legacy = legacy_ext_loss_replica(&params, spec.loss_pct, run.seed);
        let got = out.results[i].as_ref().unwrap();
        let probe = got.probe.expect("probe stats");
        assert_eq!(probe.detection_rate_pct, legacy.0, "{}", spec.name);
        assert_eq!(probe.false_alarms, legacy.1, "{}", spec.name);
        assert_eq!(probe.worst_latency_periods, legacy.2, "{}", spec.name);
        assert_eq!(got.coverage_pct, legacy.3, "{}", spec.name);
        assert_eq!(got.retries as f64, legacy.4, "{}", spec.name);
        assert_eq!(got.gave_up as f64, legacy.5, "{}", spec.name);
    }

    // And the published table (which now rides the matrix runner) equals
    // the legacy per-column means exactly.
    let table = ext_loss::run(&params);
    for (row, &loss) in table.rows.iter().zip(&ext_loss::LOSS_PCTS) {
        let legacy: Vec<LossColumns> = (0..params.seeds)
            .map(|i| {
                legacy_ext_loss_replica(&params, loss, replica_seed(params.base_seed ^ 0x1055, i))
            })
            .collect();
        let col = |f: &dyn Fn(&LossColumns) -> f64| mean(&legacy.iter().map(f).collect::<Vec<_>>());
        assert_eq!(row[0], loss as f64);
        assert_eq!(row[1], col(&|r| r.0), "detection at loss {loss}");
        assert_eq!(row[2], col(&|r| r.1), "false alarms at loss {loss}");
        assert_eq!(row[3], col(&|r| r.2), "latency at loss {loss}");
        assert_eq!(row[4], col(&|r| r.3), "coverage at loss {loss}");
        assert_eq!(row[5], col(&|r| r.4), "retries at loss {loss}");
        assert_eq!(row[6], col(&|r| r.5), "gave up at loss {loss}");
    }
}

#[test]
fn worker_count_never_changes_matrix_results() {
    let params = ExpParams::quick();
    for matrix in [fig08_like_matrix(&params, false), ext_loss::matrix(&params)] {
        let reference = MatrixRunner::new(1).run(&matrix).fingerprint_lines();
        assert_eq!(reference.len(), matrix.n_runs());
        for threads in [2usize, 8] {
            let got = MatrixRunner::new(threads).run(&matrix).fingerprint_lines();
            assert_eq!(got, reference, "threads={threads}");
        }
    }
}

#[test]
fn tracing_never_changes_matrix_results() {
    let params = ExpParams::quick();
    let plain = MatrixRunner::new(2).run(&fig08_like_matrix(&params, false));
    let traced = MatrixRunner::new(2).run(&fig08_like_matrix(&params, true));
    let traced_matrix = fig08_like_matrix(&params, true);
    let runs = traced_matrix.expand();
    for ((p, t), run) in plain.results.iter().zip(&traced.results).zip(&runs) {
        let (p, t) = (p.as_ref().unwrap(), t.as_ref().unwrap());
        assert!(p.trace.is_none());
        let trace = t.trace.as_ref().expect("traced run carries its trace");
        // The distributed schemes narrate their protocol; the baselines
        // (centralized greedy, random) place silently — their trace is
        // attached but empty.
        let scheme = traced_matrix.cells()[run.cell].scheme;
        let silent = matches!(scheme, SchemeKind::Centralized | SchemeKind::Random);
        assert_eq!(trace.is_empty(), silent, "{scheme:?}");
        // Strip the trace: everything else must match bit for bit.
        let mut stripped = t.clone();
        stripped.trace = None;
        assert_eq!(stripped.fingerprint_json(), p.fingerprint_json());
    }
    // Traces themselves are deterministic across worker counts.
    let traced8 = MatrixRunner::new(8).run(&fig08_like_matrix(&params, true));
    assert_eq!(traced8.fingerprint_lines(), traced.fingerprint_lines());
}

#[test]
fn fig08_module_matrix_covers_the_full_sweep() {
    // The module's own matrix must expand to the paper's 5 k-values over
    // all six schemes with the paper's replica count — the shape `run`
    // aggregates into the published table.
    let params = ExpParams::paper();
    let m = fig08::matrix(&params);
    assert_eq!(m.cells().len(), fig08::KS.len() * SchemeKind::ALL.len());
    assert_eq!(m.n_runs(), m.cells().len() * params.seeds);
    for (i, spec) in m.cells().iter().enumerate() {
        let k = fig08::KS[i / SchemeKind::ALL.len()];
        assert_eq!(spec.k, k);
        assert_eq!(spec.base_seed, params.base_seed ^ (k as u64) << 8);
        assert_eq!(spec.workload, Workload::Deploy);
    }
}
