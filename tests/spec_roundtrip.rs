//! Scenario-spec wire-format guarantees: serde stability, golden
//! fixtures, forward compatibility, and graceful failure.
//!
//! The spec JSONL format is the interface `decor-serve` exposes to the
//! outside world (spec files live in repos, queues, and cron jobs), so
//! it gets the golden-fixture treatment traces get: the committed
//! fixtures under `tests/fixtures/specs/` pin the exact canonical
//! rendering of the fig08 / ext_loss matrices, and any drift fails until
//! regenerated deliberately:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test spec_roundtrip
//! ```

use decor::core::SchemeKind;
use decor::exp::common::ExpParams;
use decor::exp::scenario::{ScenarioMatrix, ScenarioSpec, Workload};
use decor::exp::{ext_loss, fig08};
use proptest::prelude::*;
use std::path::PathBuf;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/specs")
        .join(name)
}

fn assert_matches_fixture(name: &str, got: &str) {
    let path = fixture_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, got).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        eprintln!("updated {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{}: {e}\nrun `UPDATE_GOLDEN=1 cargo test --test spec_roundtrip` to (re)create",
            path.display()
        )
    });
    assert_eq!(
        want, got,
        "{name}: spec wire format drifted from the committed fixture. If this \
         is an intentional format change, regenerate with UPDATE_GOLDEN=1 and \
         call out the compatibility impact in the commit."
    );
}

#[test]
fn golden_fig08_matrix_is_wire_stable() {
    let m = fig08::matrix(&ExpParams::paper());
    assert_matches_fixture("fig08_paper.jsonl", &m.to_jsonl());
}

#[test]
fn golden_ext_loss_matrix_is_wire_stable() {
    let m = ext_loss::matrix(&ExpParams::paper());
    assert_matches_fixture("ext_loss_paper.jsonl", &m.to_jsonl());
}

#[test]
fn golden_fixtures_reparse_to_the_canonical_form() {
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        return; // fixtures may not exist yet during regeneration
    }
    for name in ["fig08_paper.jsonl", "ext_loss_paper.jsonl"] {
        let text = std::fs::read_to_string(fixture_path(name)).unwrap();
        let m = ScenarioMatrix::from_jsonl(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(m.to_jsonl(), text, "{name}: parse→render must be identity");
        assert!(m.n_runs() > 0);
    }
}

#[test]
fn old_specs_with_missing_fields_parse_with_todays_defaults() {
    // A producer from before `workload`/`chaos_seed`/`trace` existed.
    let old = r#"{"scheme":"voronoi-big","k":4,"replicas":2}"#;
    let spec = ScenarioSpec::from_json(old).unwrap();
    assert_eq!(spec.scheme, SchemeKind::VoronoiBig);
    assert_eq!(spec.k, 4);
    assert_eq!(spec.replicas, 2);
    let d = ScenarioSpec::default();
    assert_eq!(spec.workload, Workload::Deploy);
    assert_eq!(spec.chaos_seed, None);
    assert!(!spec.trace);
    assert_eq!(spec.n_points, d.n_points);
    assert_eq!(spec.base_seed, d.base_seed);
}

#[test]
fn future_specs_with_unknown_fields_still_parse() {
    // A producer newer than this binary: unknown keys must be skipped,
    // known keys honored, nested unknown structure tolerated.
    let future = r#"{"scheme":"holes","k":2,"gpu_offload":true,"retry_policy":{"kind":"exp","max":[1,2,3]},"annotations":["a","b"]}"#;
    let spec = ScenarioSpec::from_json(future).unwrap();
    assert_eq!(spec.scheme, SchemeKind::Holes);
    assert_eq!(spec.k, 2);
}

#[test]
fn malformed_specs_are_errors_not_panics() {
    let cases: &[(&str, &str)] = &[
        ("", "scenario spec"),
        ("{", "scenario spec"),
        ("[]", "expected a JSON object"),
        ("42", "expected a JSON object"),
        (r#"{"k":3}"#, "missing required field 'scheme'"),
        (r#"{"scheme":"warp-field"}"#, "unknown scheme 'warp-field'"),
        (r#"{"scheme":17}"#, "must be a string"),
        (
            r#"{"scheme":"random","workload":"overclock"}"#,
            "unknown workload",
        ),
        (r#"{"scheme":"random","k":-1}"#, "non-negative integer"),
        (r#"{"scheme":"random","k":0}"#, "k must be at least 1"),
        (
            r#"{"scheme":"random","loss_pct":250}"#,
            "loss_pct must be below 100",
        ),
        (
            r#"{"scheme":"random","replicas":0}"#,
            "replicas must be positive",
        ),
        (
            r#"{"scheme":"random","n_points":0}"#,
            "n_points must be positive",
        ),
        (r#"{"scheme":"random","field_side":-5}"#, "field_side"),
        (r#"{"scheme":"random","fail_frac":0}"#, "fail_frac"),
        (r#"{"scheme":"random","base_seed":1.5}"#, "base_seed"),
        (r#"{"scheme":"random","trace":"yes"}"#, "must be a bool"),
        (r#"{"scheme":"random"} trailing"#, "scenario spec"),
    ];
    for (bad, needle) in cases {
        let err = ScenarioSpec::from_json(bad).unwrap_err();
        assert!(err.contains(needle), "{bad:?} -> {err:?}");
    }
    // The unknown-scheme error teaches the valid vocabulary.
    let err = ScenarioSpec::from_json(r#"{"scheme":"warp-field"}"#).unwrap_err();
    assert!(err.contains("grid-small"), "{err}");
    // Matrix-level errors carry line numbers.
    let err = ScenarioMatrix::from_jsonl("{\"scheme\":\"random\"}\nnot json\n").unwrap_err();
    assert!(err.contains("line 2"), "{err}");
}

#[test]
fn spec_names_survive_json_escaping() {
    for name in [
        "quotes \" and \\ backslashes",
        "newlines\nand\ttabs",
        "unicode: käse 漢字 🚀",
        "control: \u{1} \u{1f}",
    ] {
        let spec = ScenarioSpec {
            name: name.to_owned(),
            ..ScenarioSpec::default()
        };
        let back = ScenarioSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back.name, name);
    }
}

const SCHEMES: [SchemeKind; 7] = [
    SchemeKind::GridSmall,
    SchemeKind::GridBig,
    SchemeKind::VoronoiSmall,
    SchemeKind::VoronoiBig,
    SchemeKind::Centralized,
    SchemeKind::Random,
    SchemeKind::Holes,
];

fn arb_spec() -> impl Strategy<Value = ScenarioSpec> {
    (
        (0usize..7, any::<bool>(), 1u32..6, 0u32..100),
        (
            1usize..9,
            any::<u64>(),
            any::<bool>(),
            any::<bool>(),
            any::<u64>(),
        ),
        (10.0..500.0f64, 50usize..3000, 0usize..300, 0.05..0.95f64),
    )
        .prop_map(
            |(
                (si, probe, k, loss_pct),
                (replicas, base_seed, trace, has_chaos, chaos),
                (field_side, n_points, initial_nodes, fail_frac),
            )| ScenarioSpec {
                name: format!("prop-{}-k{k}", SCHEMES[si].spec_name()),
                scheme: SCHEMES[si],
                workload: if probe {
                    Workload::FailureProbe
                } else {
                    Workload::Deploy
                },
                k,
                field_side,
                n_points,
                initial_nodes,
                loss_pct,
                fail_frac,
                chaos_seed: if has_chaos { Some(chaos) } else { None },
                replicas,
                base_seed,
                trace,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any valid spec survives a serialize→parse cycle exactly — u64
    /// seeds (beyond 2^53), f64 field sizes, every enum variant.
    #[test]
    fn spec_json_roundtrips(spec in arb_spec()) {
        prop_assert!(spec.validate().is_ok());
        let json = spec.to_json();
        let back =
            ScenarioSpec::from_json(&json).unwrap_or_else(|e| panic!("{json}: {e}"));
        prop_assert_eq!(&back, &spec);
        // And the rendering is canonical: render(parse(render(x))) == render(x).
        prop_assert_eq!(back.to_json(), json);
    }

    /// Whole matrices round-trip through the JSONL wire format.
    #[test]
    fn matrix_jsonl_roundtrips(specs in prop::collection::vec(arb_spec(), 1..8)) {
        let m = ScenarioMatrix::new(specs).unwrap();
        let back = ScenarioMatrix::from_jsonl(&m.to_jsonl()).unwrap();
        prop_assert_eq!(back.fingerprint(), m.fingerprint());
        prop_assert_eq!(back, m);
    }
}
