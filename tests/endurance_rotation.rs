//! Endurance test tier — the ISSUE's acceptance criteria for distributed
//! set-k-cover rotation integrated with restoration:
//!
//! - at k = 3, lifetime to first unrecoverable coverage loss under
//!   rotation is at least 2× the always-on baseline;
//! - zero heartbeat false positives on scheduled-asleep nodes, with the
//!   suppression counter proving the three-state lifecycle was actually
//!   exercised;
//! - the endurance simulation is deterministic: bit-identical
//!   [`EnduranceReport`]s across 1/2/8 worker threads.
//!
//! `ENDURANCE_MAX_PERIODS` caps the simulated horizon (the CI endurance
//! job sets it); the cap must stay well above the natural herd-death
//! time (~100 periods at default batteries) or the capped run reports
//! `ended_by_horizon` instead of a lifetime.

use decor::core::parallel::run_replicas_with_threads;
use decor::core::{run_endurance, EnduranceConfig, EnduranceReport, SchemeKind};
use decor::exp::common::{deploy_with, ExpParams};
use decor::geom::{Disk, Point};
use decor::net::RotationConfig;

/// The horizon cap: `ENDURANCE_MAX_PERIODS` when set (the CI endurance
/// job), a test-friendly default otherwise.
fn horizon() -> u64 {
    horizon_from(std::env::var("ENDURANCE_MAX_PERIODS").ok())
}

fn horizon_from(var: Option<String>) -> u64 {
    var.and_then(|v| v.parse().ok()).unwrap_or(5_000)
}

/// Runs one endurance arm on a fresh k-covered deployment.
fn endure(
    k: u32,
    seed: u64,
    rotate: bool,
    mutate: impl FnOnce(&mut EnduranceConfig),
) -> EnduranceReport {
    let params = ExpParams::quick();
    let (mut map, _, cfg) = deploy_with(&params, SchemeKind::Centralized, k, seed, |cfg| {
        cfg.rotation = Some(RotationConfig::default());
    });
    let mut e = EnduranceConfig {
        rotate,
        max_periods: horizon(),
        ..EnduranceConfig::default()
    };
    mutate(&mut e);
    run_endurance(&mut map, &decor::core::CentralizedGreedy, &cfg, &e)
}

#[test]
fn rotation_at_k3_at_least_doubles_lifetime() {
    let seed = 7;
    let on = endure(3, seed, false, |_| {});
    let rotated = endure(3, seed, true, |_| {});
    assert!(!on.ended_by_horizon, "baseline must die inside the horizon");
    assert!(
        !rotated.ended_by_horizon,
        "rotation must die inside the horizon"
    );
    assert!(rotated.shifts > 1, "k=3 must split into shifts");
    assert_eq!(on.false_positives, 0);
    assert_eq!(rotated.false_positives, 0, "a sleeper was declared dead");
    assert!(
        rotated.extension_over(&on) >= 2.0,
        "rotation must at least double lifetime: {} vs {} periods",
        rotated.lifetime_periods,
        on.lifetime_periods
    );
}

#[test]
fn sleeping_nodes_are_never_falsely_restored() {
    // A 2-period timeout guarantees every sleep stretch of the agreed
    // schedule crosses the naive-detector alarm threshold, so the
    // suppression counter proves the three-state lifecycle fired.
    let report = endure(3, 11, true, |e| e.timeout_periods = 2);
    assert_eq!(report.false_positives, 0);
    assert_eq!(report.extra_nodes, 0, "nothing to restore, nothing placed");
    assert!(
        report.sleeping_suppressed > 0,
        "no timeout ever crossed on a sleeper — suppression untested"
    );
}

#[test]
fn detected_disaster_heals_into_the_rotation() {
    let report = endure(3, 13, true, |e| {
        e.spare_budget = 80;
        e.disasters = vec![(5, Disk::new(Point::new(40.0, 40.0), 8.0))];
    });
    assert!(report.disaster_deaths > 0, "the disc must hit someone");
    assert!(report.restorations > 0, "the hole must be healed");
    assert!(report.reschedules > 0, "replacements re-enter the rotation");
    assert_eq!(report.false_positives, 0);
}

#[test]
fn endurance_reports_are_bit_identical_across_worker_counts() {
    let run_with = |threads: usize| -> Vec<EnduranceReport> {
        run_replicas_with_threads(3, 0xE2D, threads, |i, seed| {
            endure(3, seed, i % 2 == 0, |e| e.max_periods = 500)
        })
    };
    let one = run_with(1);
    let two = run_with(2);
    let eight = run_with(8);
    assert_eq!(one, two, "2 workers diverged from sequential");
    assert_eq!(one, eight, "8 workers diverged from sequential");
}

#[test]
fn horizon_cap_parses_like_the_ci_job_sets_it() {
    assert_eq!(horizon_from(Some("120".into())), 120);
    assert_eq!(horizon_from(Some("not-a-number".into())), 5_000);
    assert_eq!(horizon_from(None), 5_000);
}

#[test]
fn capped_horizon_ends_an_immortal_run() {
    let report = endure(3, 17, true, |e| {
        e.max_periods = 40;
    });
    // 40 periods is far below herd death at default batteries: the cap,
    // not coverage loss, must end this run — exactly how the CI job's
    // ENDURANCE_MAX_PERIODS bounds wall-clock.
    assert!(report.ended_by_horizon);
    assert_eq!(report.lifetime_periods, 40);
}
