//! Property-based tests over the set-k-cover rotation invariants:
//!
//! - the canonical partition's shifts are **disjoint** and **exhaustive**
//!   over the alive nodes;
//! - **each shift alone** maintains the target coverage at every
//!   monitored point;
//! - at **any instant** of the rotation clock, the scheduled-awake set
//!   maintains the target;
//! - the endurance loop never reports an impossible outcome (false
//!   positives on sleepers, lifetimes past the horizon, more deaths than
//!   nodes) for randomized fields, coverage degrees, batteries and chaos
//!   plans.

use decor::core::{
    run_endurance, CentralizedGreedy, CoverageMap, DeploymentConfig, EnduranceConfig, Placer,
};
use decor::geom::{Aabb, Point};
use decor::lds::halton_points;
use decor::net::{FaultPlan, Network, RotationConfig, ShiftSchedule, SleepScheduler};
use proptest::prelude::*;
use std::collections::BTreeSet;

const SIDE: f64 = 40.0;

fn arb_point() -> impl Strategy<Value = Point> {
    (0.0..SIDE, 0.0..SIDE).prop_map(|(x, y)| Point::new(x, y))
}

/// A network from an arbitrary sensor cloud (rs 4, rc 8 — the paper's).
fn net_of(cloud: &[Point]) -> Network {
    let mut net = Network::new(Aabb::square(SIDE));
    for &p in cloud {
        net.add_node(p, 4.0, 8.0);
    }
    net
}

/// Coverage degree of `p` among `ids`.
fn degree(net: &Network, ids: &[usize], p: Point) -> u32 {
    ids.iter().filter(|&&id| net.node(id).covers(p)).count() as u32
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Disjoint + exhaustive + per-shift coverage, on arbitrary clouds.
    #[test]
    fn shifts_partition_the_alive_nodes(
        cloud in prop::collection::vec(arb_point(), 4..80),
        target in 1u32..3,
        n_pts in 20usize..60,
    ) {
        let net = net_of(&cloud);
        let points = halton_points(n_pts, &Aabb::square(SIDE));
        let shifts = SleepScheduler::new(target).shifts(&net, &points);
        let mut seen = BTreeSet::new();
        for shift in &shifts {
            for &id in shift {
                prop_assert!(seen.insert(id), "node {id} in two shifts");
            }
            for &p in &points {
                prop_assert!(
                    degree(&net, shift, p) >= target,
                    "a shift alone under-covers {p:?}"
                );
            }
        }
        if !shifts.is_empty() {
            let alive: BTreeSet<usize> = net.alive_ids().into_iter().collect();
            prop_assert_eq!(seen, alive, "partition must be exhaustive");
        }
    }

    /// At every instant of the rotation clock the scheduled-awake set
    /// (shift members on duty plus unscheduled nodes) holds the target.
    #[test]
    fn scheduled_awake_set_covers_at_every_instant(
        cloud in prop::collection::vec(arb_point(), 4..60),
        target in 1u32..3,
        period in 1u64..5_000,
        probes in prop::collection::vec(0u64..1_000_000, 4..9),
    ) {
        let net = net_of(&cloud);
        let points = halton_points(30, &Aabb::square(SIDE));
        let shifts = SleepScheduler::new(target).shifts(&net, &points);
        prop_assume!(!shifts.is_empty());
        let schedule = ShiftSchedule::new(shifts, period, net.len());
        for &t in &probes {
            let awake: Vec<usize> = (0..net.len())
                .filter(|&id| !schedule.is_scheduled_asleep(id, t))
                .collect();
            for &p in &points {
                prop_assert!(
                    degree(&net, &awake, p) >= target,
                    "under-covered at t={t}"
                );
            }
        }
    }
}

proptest! {
    // The endurance loop is a full simulation per case; keep cases few.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Endurance outcomes stay sane for random k, battery and chaos.
    #[test]
    fn endurance_reports_are_always_plausible(
        k in 1u32..4,
        battery in 200.0..2_000.0f64,
        chaos_seed in 0u64..1_000,
        with_chaos in any::<bool>(),
        rotate in any::<bool>(),
    ) {
        let field = Aabb::square(SIDE);
        let mut cfg = DeploymentConfig::with_k(k);
        cfg.rotation = Some(RotationConfig {
            battery,
            ..RotationConfig::default()
        });
        let mut map = CoverageMap::new(halton_points(120, &field), &field, &cfg);
        CentralizedGreedy.place(&mut map, &cfg);
        let n0 = map.n_active_sensors();
        cfg.chaos = with_chaos.then(|| FaultPlan::generate(chaos_seed, n0, 50_000));
        let e = EnduranceConfig {
            rotate,
            max_periods: 300,
            ..EnduranceConfig::default()
        };
        let report = run_endurance(&mut map, &CentralizedGreedy, &cfg, &e);
        prop_assert_eq!(report.false_positives, 0, "sleeper declared dead");
        prop_assert!(report.lifetime_periods <= e.max_periods);
        if report.ended_by_horizon {
            prop_assert_eq!(report.lifetime_periods, e.max_periods);
        }
        let deaths = report.battery_deaths + report.disaster_deaths + report.chaos_deaths;
        prop_assert!(deaths <= n0, "more deaths ({deaths}) than sensors ({n0})");
        prop_assert!(report.detected_deaths <= deaths);
        if !rotate {
            prop_assert_eq!(report.sleeping_suppressed, 0);
            prop_assert_eq!(report.reschedules, 0);
        }
    }
}
